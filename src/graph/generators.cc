#include "graph/generators.h"

#include <cmath>
#include <vector>

#include "geo/spatial_grid.h"
#include "graph/scc.h"
#include "util/logging.h"
#include "util/rng.h"

namespace netclus::graph {

namespace {

// Adds a mesh of (rows x cols) intersections anchored at (origin_x,
// origin_y); returns the node ids in row-major order. Streets between
// adjacent intersections are two-way by default; with probability
// `one_way_fraction` an entire street (row or column) becomes one-way with
// alternating direction, Manhattan style.
std::vector<NodeId> AddMesh(RoadNetworkBuilder* builder, util::Rng* rng,
                            uint32_t rows, uint32_t cols, double block_m,
                            double jitter_m, double origin_x, double origin_y,
                            double one_way_fraction,
                            double edge_drop_fraction) {
  std::vector<NodeId> ids(static_cast<size_t>(rows) * cols);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      const double x = origin_x + c * block_m + rng->Uniform(-jitter_m, jitter_m);
      const double y = origin_y + r * block_m + rng->Uniform(-jitter_m, jitter_m);
      ids[static_cast<size_t>(r) * cols + c] = builder->AddNode({x, y});
    }
  }
  // Decide one-way status per street (whole row / whole column), with
  // alternating directions as in real grids.
  std::vector<int> row_dir(rows, 0);  // 0 two-way, +1 east, -1 west
  std::vector<int> col_dir(cols, 0);  // 0 two-way, +1 north, -1 south
  for (uint32_t r = 0; r < rows; ++r) {
    if (rng->Bernoulli(one_way_fraction)) row_dir[r] = (r % 2 == 0) ? 1 : -1;
  }
  for (uint32_t c = 0; c < cols; ++c) {
    if (rng->Bernoulli(one_way_fraction)) col_dir[c] = (c % 2 == 0) ? 1 : -1;
  }
  auto node = [&](uint32_t r, uint32_t c) {
    return ids[static_cast<size_t>(r) * cols + c];
  };
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c + 1 < cols; ++c) {
      if (rng->Bernoulli(edge_drop_fraction)) continue;
      if (row_dir[r] >= 0) builder->AddEdge(node(r, c), node(r, c + 1));
      if (row_dir[r] <= 0) builder->AddEdge(node(r, c + 1), node(r, c));
    }
  }
  for (uint32_t c = 0; c < cols; ++c) {
    for (uint32_t r = 0; r + 1 < rows; ++r) {
      if (rng->Bernoulli(edge_drop_fraction)) continue;
      if (col_dir[c] >= 0) builder->AddEdge(node(r, c), node(r + 1, c));
      if (col_dir[c] <= 0) builder->AddEdge(node(r + 1, c), node(r, c));
    }
  }
  return ids;
}

// Adds a two-way arterial between positions `from` and `to` with
// intermediate nodes every `step_m`; returns all node ids on it, endpoints
// excluded unless they are created here.
std::vector<NodeId> AddArterial(RoadNetworkBuilder* builder, util::Rng* rng,
                                const geo::Point& from, const geo::Point& to,
                                double step_m, double jitter_m) {
  const double length = geo::Distance(from, to);
  const uint32_t segments = std::max<uint32_t>(1, static_cast<uint32_t>(length / step_m));
  std::vector<NodeId> nodes;
  for (uint32_t i = 1; i < segments; ++i) {
    const double t = static_cast<double>(i) / segments;
    const double x = from.x + t * (to.x - from.x) + rng->Uniform(-jitter_m, jitter_m);
    const double y = from.y + t * (to.y - from.y) + rng->Uniform(-jitter_m, jitter_m);
    nodes.push_back(builder->AddNode({x, y}));
  }
  return nodes;
}

// Chains node ids with two-way edges: a - n0 - n1 - ... - b.
void ChainBidirectional(RoadNetworkBuilder* builder, NodeId a,
                        const std::vector<NodeId>& mid, NodeId b) {
  NodeId prev = a;
  for (NodeId n : mid) {
    builder->AddBidirectional(prev, n);
    prev = n;
  }
  builder->AddBidirectional(prev, b);
}

}  // namespace

RoadNetwork GenerateGridCity(const GridCityConfig& config) {
  NC_CHECK_GE(config.rows, 2u);
  NC_CHECK_GE(config.cols, 2u);
  util::Rng rng(config.seed);
  RoadNetworkBuilder builder;
  AddMesh(&builder, &rng, config.rows, config.cols, config.block_m,
          config.jitter_m, 0.0, 0.0, config.one_way_fraction,
          config.edge_drop_fraction);
  RoadNetwork raw = std::move(builder).Build();
  return RestrictToLargestScc(raw, nullptr);
}

RoadNetwork GenerateStarCity(const StarCityConfig& config) {
  NC_CHECK_GE(config.num_rays, 3u);
  util::Rng rng(config.seed);
  RoadNetworkBuilder builder;

  // Dense downtown mesh centered at the origin.
  const double core_w = (config.core_cols - 1) * config.core_block_m;
  const double core_h = (config.core_rows - 1) * config.core_block_m;
  const std::vector<NodeId> core =
      AddMesh(&builder, &rng, config.core_rows, config.core_cols,
              config.core_block_m, config.jitter_m, -core_w / 2.0,
              -core_h / 2.0, /*one_way_fraction=*/0.3,
              /*edge_drop_fraction=*/0.02);

  // Rays: corridors leaving the core edge outward.
  const double core_radius = std::max(core_w, core_h) / 2.0;
  std::vector<std::vector<NodeId>> rays(config.num_rays);
  for (uint32_t ray = 0; ray < config.num_rays; ++ray) {
    const double angle = 2.0 * M_PI * ray / config.num_rays;
    const double cx = std::cos(angle);
    const double cy = std::sin(angle);
    NodeId prev = kInvalidNode;
    for (uint32_t i = 0; i < config.nodes_per_ray; ++i) {
      const double radius = core_radius + (i + 1) * config.ray_step_m;
      const geo::Point p{radius * cx + rng.Uniform(-config.jitter_m, config.jitter_m),
                         radius * cy + rng.Uniform(-config.jitter_m, config.jitter_m)};
      const NodeId n = builder.AddNode(p);
      rays[ray].push_back(n);
      if (prev != kInvalidNode) builder.AddBidirectional(prev, n);
      prev = n;
    }
  }
  // Anchor each ray to the nearest core boundary node.
  // Core boundary: first/last rows and columns.
  std::vector<NodeId> boundary;
  for (uint32_t c = 0; c < config.core_cols; ++c) {
    boundary.push_back(core[c]);
    boundary.push_back(core[static_cast<size_t>(config.core_rows - 1) * config.core_cols + c]);
  }
  for (uint32_t r = 0; r < config.core_rows; ++r) {
    boundary.push_back(core[static_cast<size_t>(r) * config.core_cols]);
    boundary.push_back(core[static_cast<size_t>(r) * config.core_cols + config.core_cols - 1]);
  }
  // Anchor each ray to a boundary node chosen round-robin: rays are evenly
  // spaced and the core is convex, so index spacing keeps corridors sensible
  // without needing boundary positions back from the builder.
  for (uint32_t ray = 0; ray < config.num_rays; ++ray) {
    const size_t idx = (static_cast<size_t>(ray) * boundary.size()) / config.num_rays;
    builder.AddBidirectional(boundary[idx], rays[ray].front());
  }
  // Ring roads: connect node i of every ray to node i of the next ray, for a
  // few selected radii.
  for (uint32_t ring = 0; ring < config.num_rings; ++ring) {
    const uint32_t i =
        static_cast<uint32_t>((static_cast<uint64_t>(ring + 1) * config.nodes_per_ray) /
                              (config.num_rings + 1));
    if (i >= config.nodes_per_ray) continue;
    for (uint32_t ray = 0; ray < config.num_rays; ++ray) {
      const NodeId a = rays[ray][i];
      const NodeId b = rays[(ray + 1) % config.num_rays][i];
      builder.AddBidirectional(a, b);
    }
  }
  RoadNetwork raw = std::move(builder).Build();
  return RestrictToLargestScc(raw, nullptr);
}

RoadNetwork GeneratePolycentricCity(const PolycentricCityConfig& config) {
  NC_CHECK_GE(config.num_centers, 2u);
  util::Rng rng(config.seed);
  RoadNetworkBuilder builder;

  // District centers: one at the origin (CBD), the rest on a circle.
  std::vector<geo::Point> centers;
  centers.push_back({0.0, 0.0});
  for (uint32_t i = 1; i < config.num_centers; ++i) {
    const double angle = 2.0 * M_PI * (i - 1) / (config.num_centers - 1) +
                         rng.Uniform(-0.15, 0.15);
    const double radius = config.city_span_m / 2.0 * rng.Uniform(0.6, 1.0);
    centers.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }

  // A mesh patch per district. Remember each patch's node ids.
  std::vector<std::vector<NodeId>> patches;
  std::vector<geo::Point> patch_anchor;  // entry point position per district
  std::vector<NodeId> anchors;
  for (const geo::Point& c : centers) {
    const double w = (config.patch_cols - 1) * config.block_m;
    const double h = (config.patch_rows - 1) * config.block_m;
    std::vector<NodeId> ids = AddMesh(
        &builder, &rng, config.patch_rows, config.patch_cols, config.block_m,
        config.jitter_m, c.x - w / 2.0, c.y - h / 2.0,
        /*one_way_fraction=*/0.2, /*edge_drop_fraction=*/0.03);
    // Anchor: mesh center node.
    const NodeId anchor =
        ids[static_cast<size_t>(config.patch_rows / 2) * config.patch_cols +
            config.patch_cols / 2];
    anchors.push_back(anchor);
    patch_anchor.push_back(c);
    patches.push_back(std::move(ids));
  }

  // Arterials: CBD to every district, plus the outer districts in a ring.
  for (uint32_t i = 1; i < config.num_centers; ++i) {
    std::vector<NodeId> mid =
        AddArterial(&builder, &rng, patch_anchor[0], patch_anchor[i],
                    config.arterial_step_m, config.jitter_m);
    ChainBidirectional(&builder, anchors[0], mid, anchors[i]);
  }
  for (uint32_t i = 1; i < config.num_centers; ++i) {
    const uint32_t j = (i % (config.num_centers - 1)) + 1;
    std::vector<NodeId> mid =
        AddArterial(&builder, &rng, patch_anchor[i], patch_anchor[j],
                    config.arterial_step_m, config.jitter_m);
    ChainBidirectional(&builder, anchors[i], mid, anchors[j]);
  }

  RoadNetwork raw = std::move(builder).Build();
  return RestrictToLargestScc(raw, nullptr);
}

RoadNetwork GenerateRandomCity(const RandomCityConfig& config) {
  NC_CHECK_GE(config.num_nodes, 10u);
  util::Rng rng(config.seed);
  RoadNetworkBuilder builder;
  std::vector<geo::Point> pts;
  pts.reserve(config.num_nodes);
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    const geo::Point p{rng.Uniform(0.0, config.span_m),
                       rng.Uniform(0.0, config.span_m)};
    pts.push_back(p);
    builder.AddNode(p);
  }
  geo::PointGrid grid(config.span_m / 50.0);
  grid.Build(pts);
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    const std::vector<uint32_t> nbrs = grid.KNearest(pts[i], config.neighbors + 1);
    for (uint32_t j : nbrs) {
      if (j == i) continue;
      if (rng.Bernoulli(config.one_way_fraction)) {
        builder.AddEdge(i, j);
      } else {
        builder.AddBidirectional(i, j);
      }
    }
  }
  RoadNetwork raw = std::move(builder).Build();
  return RestrictToLargestScc(raw, nullptr);
}

}  // namespace netclus::graph
