#include "graph/scc.h"

#include <algorithm>

#include "util/logging.h"

namespace netclus::graph {

std::vector<uint32_t> StronglyConnectedComponents(const RoadNetwork& net,
                                                  uint32_t* num_components) {
  const size_t n = net.num_nodes();
  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint32_t> component(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  uint32_t next_index = 0;
  uint32_t next_component = 0;

  // Explicit DFS stack: (node, position within its arc list).
  struct Frame {
    NodeId node;
    uint32_t arc_pos;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const NodeId u = frame.node;
      if (frame.arc_pos == 0) {
        index[u] = lowlink[u] = next_index++;
        stack.push_back(u);
        on_stack[u] = true;
      }
      const auto arcs = net.OutArcs(u);
      bool descended = false;
      while (frame.arc_pos < arcs.size()) {
        const NodeId v = arcs[frame.arc_pos].to;
        ++frame.arc_pos;
        if (index[v] == kUnvisited) {
          dfs.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      }
      if (descended) continue;
      // All arcs explored: close the frame.
      if (lowlink[u] == index[u]) {
        while (true) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component[w] = next_component;
          if (w == u) break;
        }
        ++next_component;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().node] = std::min(lowlink[dfs.back().node], lowlink[u]);
      }
    }
  }
  if (num_components != nullptr) *num_components = next_component;
  return component;
}

RoadNetwork RestrictToLargestScc(const RoadNetwork& net,
                                 std::vector<NodeId>* old_to_new) {
  uint32_t num_components = 0;
  const std::vector<uint32_t> component =
      StronglyConnectedComponents(net, &num_components);
  std::vector<uint32_t> sizes(num_components, 0);
  for (uint32_t c : component) ++sizes[c];
  const uint32_t largest = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> mapping(net.num_nodes(), kInvalidNode);
  RoadNetworkBuilder builder;
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    if (component[u] == largest) mapping[u] = builder.AddNode(net.position(u));
  }
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    if (mapping[u] == kInvalidNode) continue;
    for (const Arc& arc : net.OutArcs(u)) {
      if (mapping[arc.to] != kInvalidNode) {
        builder.AddEdge(mapping[u], mapping[arc.to], arc.weight);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return std::move(builder).Build();
}

}  // namespace netclus::graph
