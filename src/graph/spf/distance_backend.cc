#include "graph/spf/distance_backend.h"

#include "graph/dijkstra.h"
#include "graph/spf/bidirectional_dijkstra.h"
#include "graph/spf/contraction_hierarchy.h"
#include "util/flags.h"
#include "util/logging.h"

namespace netclus::graph::spf {

namespace {

/// The stateless backend around the reference DijkstraEngine.
class DijkstraBackend : public DistanceBackend {
 public:
  explicit DijkstraBackend(const RoadNetwork* net) : DistanceBackend(net) {}

  BackendKind kind() const override { return BackendKind::kDijkstra; }
  std::unique_ptr<DistanceQuery> MakeQuery() const override {
    return std::make_unique<DijkstraEngine>(net_);
  }
  uint64_t MemoryBytes() const override { return 0; }
};

}  // namespace

const char* BackendName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDefault:
      return "default";
    case BackendKind::kDijkstra:
      return "dijkstra";
    case BackendKind::kBidirectional:
      return "bidir";
    case BackendKind::kContractionHierarchies:
      return "ch";
  }
  return "unknown";
}

std::optional<BackendKind> ParseBackendName(std::string_view name) {
  if (name == "dijkstra") return BackendKind::kDijkstra;
  if (name == "bidir" || name == "bidirectional") {
    return BackendKind::kBidirectional;
  }
  if (name == "ch" || name == "contraction") {
    return BackendKind::kContractionHierarchies;
  }
  if (name == "default") return BackendKind::kDefault;
  return std::nullopt;
}

BackendKind ResolveBackendKind(BackendKind kind) {
  if (kind != BackendKind::kDefault) return kind;
  const std::string env = util::GetEnvString("NETCLUS_SPF", "dijkstra");
  const std::optional<BackendKind> parsed = ParseBackendName(env);
  if (!parsed.has_value() || *parsed == BackendKind::kDefault) {
    if (!parsed.has_value()) {
      NC_LOG_WARNING << "NETCLUS_SPF=" << env
                     << ": unknown backend, using dijkstra";
    }
    return BackendKind::kDijkstra;
  }
  return *parsed;
}

std::shared_ptr<const DistanceBackend> MakeBackend(BackendKind kind,
                                                   const RoadNetwork* net,
                                                   uint32_t threads) {
  NC_CHECK(net != nullptr);
  switch (ResolveBackendKind(kind)) {
    case BackendKind::kBidirectional:
      return std::make_shared<BidirectionalBackend>(net);
    case BackendKind::kContractionHierarchies:
      return std::shared_ptr<const DistanceBackend>(
          ContractionHierarchy::Build(net, threads));
    case BackendKind::kDefault:
    case BackendKind::kDijkstra:
      break;
  }
  return std::make_shared<DijkstraBackend>(net);
}

std::unique_ptr<DistanceQuery> MakeQueryOrDijkstra(
    const DistanceBackend* backend, const RoadNetwork* net) {
  if (backend != nullptr) return backend->MakeQuery();
  return std::make_unique<DijkstraEngine>(net);
}

}  // namespace netclus::graph::spf
