// Bidirectional Dijkstra backend.
//
// Point-to-point queries run two stamped Dijkstra searches — forward from
// s and backward from t — alternating on the smaller frontier and stopping
// when top_f + top_b >= μ (the best meeting-path length seen). On road
// networks this settles roughly two balls of half the radius instead of
// one full ball, a 2-4x node-count reduction.
//
// One-to-many primitives (BoundedSearch, FullSearch, BoundedRoundTrip) are
// inherently unidirectional and delegate to the plain Dijkstra engine, so
// this backend is a drop-in with identical results everywhere and wins on
// the point-to-point-heavy paths (map matching, τ estimation).
//
// Distances are bit-identical to the Dijkstra oracle: both directions
// accumulate float arc weights in doubles, every partial sum is exact (see
// spf/distance_backend.h), so d_f(v) + d_b(v) equals the exact shortest
// path length with no order dependence.
#ifndef NETCLUS_GRAPH_SPF_BIDIRECTIONAL_DIJKSTRA_H_
#define NETCLUS_GRAPH_SPF_BIDIRECTIONAL_DIJKSTRA_H_

#include <queue>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/spf/distance_backend.h"

namespace netclus::graph::spf {

class BidirectionalQuery : public DistanceQuery {
 public:
  explicit BidirectionalQuery(const RoadNetwork* net);

  std::vector<Settled> BoundedSearch(NodeId source, double radius,
                                     Direction dir) override {
    auto out = fallback_.BoundedSearch(source, radius, dir);
    last_settled_ = fallback_.last_settled_count();
    return out;
  }
  std::vector<double> FullSearch(NodeId source, Direction dir) override {
    auto out = fallback_.FullSearch(source, dir);
    last_settled_ = fallback_.last_settled_count();
    return out;
  }
  std::vector<RoundTrip> BoundedRoundTrip(NodeId source,
                                          double radius) override {
    auto out = fallback_.BoundedRoundTrip(source, radius);
    last_settled_ = fallback_.last_settled_count();
    return out;
  }

  double PointToPoint(NodeId s, NodeId t, double radius = -1.0) override;
  std::vector<NodeId> ShortestPath(NodeId s, NodeId t,
                                   double radius = -1.0) override;

  size_t last_settled_count() const override { return last_settled_; }

 private:
  // One direction's stamped label state (see DijkstraEngine for the
  // stamping idiom). `side` is 0 = forward, 1 = backward.
  double DistOf(int side, NodeId v) const {
    return stamp_[side][v] == epoch_ ? dist_[side][v] : kInfDistance;
  }
  void SetDist(int side, NodeId v, double d) {
    stamp_[side][v] = epoch_;
    dist_[side][v] = d;
  }
  void NewEpoch();

  /// Core meet-in-the-middle search. Returns μ (kInfDistance when s and t
  /// are disconnected or μ > limit); fills `meet` with the meeting node.
  double Meet(NodeId s, NodeId t, double limit, NodeId* meet);

  const RoadNetwork* net_;
  DijkstraEngine fallback_;
  std::vector<double> dist_[2];
  std::vector<uint32_t> stamp_[2];
  std::vector<NodeId> parent_[2];  // valid under the same stamp as dist_
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  using HeapEntry = std::pair<double, NodeId>;
  using Heap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
  Heap heap_[2];
};

class BidirectionalBackend : public DistanceBackend {
 public:
  explicit BidirectionalBackend(const RoadNetwork* net)
      : DistanceBackend(net) {}

  BackendKind kind() const override { return BackendKind::kBidirectional; }
  std::unique_ptr<DistanceQuery> MakeQuery() const override {
    return std::make_unique<BidirectionalQuery>(net_);
  }
  uint64_t MemoryBytes() const override { return 0; }
};

}  // namespace netclus::graph::spf

#endif  // NETCLUS_GRAPH_SPF_BIDIRECTIONAL_DIJKSTRA_H_
