// Contraction Hierarchies distance oracle (Geisberger et al.).
//
// Preprocessing totally orders the nodes by importance (edge difference +
// deleted-neighbors heuristic with lazy priority updates) and contracts
// them in that order, inserting a shortcut (u, x) of weight w(u,v) + w(v,x)
// whenever removing v would break the shortest u -> x distance (a bounded
// witness search decides; inconclusive searches insert conservatively).
// Every shortest path then has an up-then-down shape in the hierarchy, so:
//
//  * point-to-point: bidirectional Dijkstra over the upward/downward
//    graphs, visiting hundreds of nodes where plain Dijkstra visits the
//    whole ball;
//  * one-to-many (the covering-set workhorse): a PHAST-style batched
//    query — one small upward search, then a single linear sweep over the
//    downward arcs in descending rank order. No heap, sequential memory
//    access: on large search radii this is several times faster than a
//    bounded Dijkstra even though it scans the whole arc array.
//
// Shortcut weights are doubles (exact sums of the original float arc
// weights — see spf/distance_backend.h), so every distance this backend
// returns is bit-identical to the Dijkstra oracle; tests/test_spf.cc
// checks this on 50 random graphs per run.
//
// The preprocessed structure is immutable and shareable; it serializes
// into the index file (netclus/index_io) so a deployment that persists its
// index also persists the hierarchy and never re-contracts on load.
#ifndef NETCLUS_GRAPH_SPF_CONTRACTION_HIERARCHY_H_
#define NETCLUS_GRAPH_SPF_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "graph/spf/distance_backend.h"

namespace netclus::graph::spf {

/// One arc of the hierarchy. Original arcs keep their middle at
/// kInvalidNode; a shortcut records the contracted node it bypasses so
/// ShortestPath can unpack recursively.
struct ChArc {
  NodeId to;      ///< the higher-ranked endpoint's neighbor (see CSR docs)
  NodeId middle;  ///< contracted middle node, kInvalidNode for originals
  double weight;  ///< exact double sum of original float weights
};

class ContractionHierarchy : public DistanceBackend {
 public:
  /// Contracts the whole network. `threads` parallelizes the initial
  /// priority computation (0 = NETCLUS_THREADS default); the contraction
  /// order — and therefore the structure — is identical at any count.
  static std::unique_ptr<ContractionHierarchy> Build(const RoadNetwork* net,
                                                     uint32_t threads = 0);

  BackendKind kind() const override {
    return BackendKind::kContractionHierarchies;
  }
  std::unique_ptr<DistanceQuery> MakeQuery() const override;
  uint64_t MemoryBytes() const override;
  double build_seconds() const override { return build_seconds_; }

  size_t num_shortcuts() const { return num_shortcuts_; }
  uint32_t rank(NodeId v) const { return rank_[v]; }

  /// Serialization for the index file's backend section. ReadFrom
  /// validates node counts and arc endpoints against `net`.
  void WriteTo(std::ostream& os) const;
  static bool ReadFrom(std::istream& is, const RoadNetwork* net,
                       std::unique_ptr<ContractionHierarchy>* out,
                       std::string* error);

 private:
  friend class ChQuery;

  struct Csr {
    std::vector<uint32_t> offsets;  // size n+1
    std::vector<ChArc> arcs;
    std::span<const ChArc> at(NodeId u) const {
      return {arcs.data() + offsets[u], arcs.data() + offsets[u + 1]};
    }
  };

  /// The PHAST sweep's data, laid out for the sweep: arc groups in
  /// descending rank order of the low endpoint (nodes without incoming
  /// downward arcs are skipped — the sweep cannot improve them), struct-
  /// of-arrays so the inner loop streams `to`/`weight` sequentially.
  struct Sweep {
    std::vector<NodeId> node;       // low endpoint per group
    std::vector<uint32_t> offsets;  // group g's arcs at [g, g+1)
    std::vector<NodeId> to;         // higher-ranked relax source
    std::vector<double> weight;
  };

  explicit ContractionHierarchy(const RoadNetwork* net)
      : DistanceBackend(net) {}
  void FinalizeDerived();  // by_rank_desc_ from rank_

  std::vector<uint32_t> rank_;  ///< contraction order; higher = more important
  /// Upward arcs: up_.at(u) holds arcs (u -> to) with rank(to) > rank(u).
  /// The forward search graph; also the reverse sweep's relax source.
  Csr up_;
  /// Downward arcs indexed by the LOWER endpoint: down_.at(w) holds arcs
  /// (to -> w) with rank(to) > rank(w), i.e. `to` is the original tail.
  /// The backward search graph; also the forward sweep's relax source.
  Csr down_;
  std::vector<NodeId> by_rank_desc_;  ///< nodes sorted by descending rank
  Sweep sweep_fwd_;  ///< down_ reordered for the forward sweep
  Sweep sweep_rev_;  ///< up_ reordered for the reverse sweep
  size_t num_shortcuts_ = 0;
  double build_seconds_ = 0.0;
};

/// Per-thread CH query workspace.
class ChQuery : public DistanceQuery {
 public:
  explicit ChQuery(const ContractionHierarchy* ch);

  std::vector<Settled> BoundedSearch(NodeId source, double radius,
                                     Direction dir) override;
  std::vector<double> FullSearch(NodeId source, Direction dir) override;
  double PointToPoint(NodeId s, NodeId t, double radius = -1.0) override;
  std::vector<RoundTrip> BoundedRoundTrip(NodeId source,
                                          double radius) override;
  std::vector<NodeId> ShortestPath(NodeId s, NodeId t,
                                   double radius = -1.0) override;
  size_t last_settled_count() const override { return last_settled_; }

 private:
  double DistOf(int side, NodeId v) const {
    return stamp_[side][v] == epoch_ ? dist_[side][v] : kInfDistance;
  }
  void SetDist(int side, NodeId v, double d);
  void NewEpoch();

  /// PHAST-style batched one-to-many: upward Dijkstra from `source`, then
  /// one descending-rank sweep streaming the Sweep arrays. Labels land in
  /// om_dist_[side] (kInfDistance = unlabeled; om_touched_ records every
  /// labeled node and drives the lazy O(touched) reset).
  void OneToMany(NodeId source, double limit, Direction dir, int side);
  void ResetOneToMany(int side);

  /// Bidirectional upward search; returns μ (kInfDistance if none ≤
  /// limit) and the meeting node. Tracks parents when `track_parents`.
  double Meet(NodeId s, NodeId t, double limit, bool track_parents,
              NodeId* meet);

  /// Appends the unpacked original-node sequence of CH arc (u, v, middle)
  /// after u: intermediate nodes then v.
  void ExpandArc(NodeId u, NodeId v, NodeId middle,
                 std::vector<NodeId>* path) const;

  const ContractionHierarchy* ch_;
  // Stamped labels for the bidirectional point-to-point search.
  std::vector<double> dist_[2];
  std::vector<uint32_t> stamp_[2];
  std::vector<NodeId> parent_node_[2];
  std::vector<uint32_t> parent_arc_[2];  // index into up_/down_ arc pools
  // Lazily reset labels for the batched one-to-many queries (the sweep
  // reads them once per arc; skipping the stamp check halves its memory
  // traffic).
  std::vector<double> om_dist_[2];
  std::vector<NodeId> om_touched_[2];
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  using HeapEntry = std::pair<double, NodeId>;
  using Heap =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
  Heap heap_[2];
};

}  // namespace netclus::graph::spf

#endif  // NETCLUS_GRAPH_SPF_CONTRACTION_HIERARCHY_H_
