#include "graph/spf/contraction_hierarchy.h"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>

#include "util/float_bits.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/timer.h"

namespace netclus::graph::spf {

namespace {

// Settled-node cap per witness search. Inconclusive searches insert the
// shortcut conservatively, which can only slow queries, never corrupt
// distances.
constexpr size_t kWitnessSettleCap = 512;

// Mutable adjacency during contraction: min-weight arc per (from, to) pair.
struct BuildArc {
  NodeId to;
  NodeId middle;
  double weight;
};

struct Shortcut {
  NodeId from;
  NodeId to;
  NodeId middle;
  double weight;
};

// Bounded Dijkstra over the shrinking build graph, skipping contracted
// nodes and one excluded node (the contraction candidate). Stamped arrays
// make repeated searches O(settled).
class WitnessSearch {
 public:
  explicit WitnessSearch(size_t n) : dist_(n, 0.0), stamp_(n, 0) {}

  /// Distances from `source` (excluding paths through `excluded`) to every
  /// node within `limit`, capped at kWitnessSettleCap settled nodes.
  void Run(const std::vector<std::vector<BuildArc>>& fwd,
           const std::vector<uint8_t>& contracted, NodeId source,
           NodeId excluded, double limit) {
    ++epoch_;
    if (epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    while (!heap_.empty()) heap_.pop();
    Set(source, 0.0);
    heap_.push({0.0, source});
    size_t settled = 0;
    while (!heap_.empty() && settled < kWitnessSettleCap) {
      const auto [d, u] = heap_.top();
      heap_.pop();
      if (d > Get(u)) continue;
      ++settled;
      for (const BuildArc& arc : fwd[u]) {
        if (contracted[arc.to] || arc.to == excluded) continue;
        const double nd = d + arc.weight;
        if (nd <= limit && nd < Get(arc.to)) {
          Set(arc.to, nd);
          heap_.push({nd, arc.to});
        }
      }
    }
  }

  double Get(NodeId v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kInfDistance;
  }

 private:
  void Set(NodeId v, double d) {
    stamp_[v] = epoch_;
    dist_[v] = d;
  }

  std::vector<double> dist_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  std::priority_queue<std::pair<double, NodeId>,
                      std::vector<std::pair<double, NodeId>>, std::greater<>>
      heap_;
};

// The whole mutable contraction state, so the simulation used for
// priorities and the real contraction share one code path.
struct Contractor {
  std::vector<std::vector<BuildArc>> fwd;  // out-arcs among uncontracted
  std::vector<std::vector<BuildArc>> rev;  // in-arcs (to = original tail)
  std::vector<uint8_t> contracted;
  std::vector<uint32_t> deleted_neighbors;

  explicit Contractor(const RoadNetwork& net)
      : fwd(net.num_nodes()),
        rev(net.num_nodes()),
        contracted(net.num_nodes(), 0),
        deleted_neighbors(net.num_nodes(), 0) {
    // Collapse parallel arcs to the min weight up front: search semantics
    // already take the min, and unique (from, to) pairs keep the dedup
    // insert below a simple scan.
    for (NodeId u = 0; u < net.num_nodes(); ++u) {
      for (const Arc& arc : net.OutArcs(u)) {
        InsertOrLighten(u, arc.to, kInvalidNode,
                        static_cast<double>(arc.weight));
      }
    }
  }

  // Adds arc (from, to) or lowers the existing weight; keeps (from, to)
  // unique in both adjacency views.
  void InsertOrLighten(NodeId from, NodeId to, NodeId middle, double weight) {
    for (BuildArc& arc : fwd[from]) {
      if (arc.to == to) {
        if (weight < arc.weight) {
          arc.weight = weight;
          arc.middle = middle;
          for (BuildArc& r : rev[to]) {
            if (r.to == from) {
              r.weight = weight;
              r.middle = middle;
              break;
            }
          }
        }
        return;
      }
    }
    fwd[from].push_back({to, middle, weight});
    rev[to].push_back({from, middle, weight});
  }

  /// Witness-searches the contraction of `v`. Returns the number of
  /// shortcuts it would need; appends them to `out` when non-null.
  int64_t Simulate(NodeId v, WitnessSearch& witness,
                   std::vector<Shortcut>* out) const {
    int64_t shortcuts = 0;
    for (const BuildArc& in : rev[v]) {
      const NodeId u = in.to;
      if (contracted[u] || u == v) continue;
      // One witness search from u covers every target x of v.
      double max_via = 0.0;
      bool any_target = false;
      for (const BuildArc& outarc : fwd[v]) {
        if (contracted[outarc.to] || outarc.to == u || outarc.to == v) continue;
        any_target = true;
        max_via = std::max(max_via, in.weight + outarc.weight);
      }
      if (!any_target) continue;
      witness.Run(fwd, contracted, u, v, max_via);
      for (const BuildArc& outarc : fwd[v]) {
        const NodeId x = outarc.to;
        if (contracted[x] || x == u || x == v) continue;
        const double via = in.weight + outarc.weight;
        if (witness.Get(x) <= via) continue;  // witness preserves distance
        ++shortcuts;
        if (out != nullptr) out->push_back({u, x, v, via});
      }
    }
    return shortcuts;
  }

  int64_t LiveDegree(NodeId v) const {
    int64_t degree = 0;
    for (const BuildArc& arc : fwd[v]) degree += contracted[arc.to] ? 0 : 1;
    for (const BuildArc& arc : rev[v]) degree += contracted[arc.to] ? 0 : 1;
    return degree;
  }

  /// Edge difference + deleted-neighbors priority; smaller contracts first.
  int64_t Priority(NodeId v, WitnessSearch& witness) const {
    return 2 * (Simulate(v, witness, nullptr) - LiveDegree(v)) +
           deleted_neighbors[v];
  }
};

}  // namespace

std::unique_ptr<ContractionHierarchy> ContractionHierarchy::Build(
    const RoadNetwork* net, uint32_t threads) {
  NC_CHECK(net != nullptr);
  util::WallTimer timer;
  const size_t n = net->num_nodes();
  auto ch = std::unique_ptr<ContractionHierarchy>(
      new ContractionHierarchy(net));
  ch->rank_.assign(n, 0);
  Contractor state(*net);

  // Initial priorities: independent per node, so computed in parallel
  // (coarse chunks — each carries an O(n) witness scratch). The values do
  // not depend on the chunk layout, keeping the contraction order (and the
  // hierarchy) bit-identical at any thread count.
  std::vector<int64_t> priority(n, 0);
  const unsigned t = util::ResolveThreads(threads);
  util::ParallelFor(
      t, n,
      [&](size_t begin, size_t end) {
        WitnessSearch witness(n);
        for (size_t v = begin; v < end; ++v) {
          priority[v] =
              state.Priority(static_cast<NodeId>(v), witness);
        }
      },
      util::CoarseGrain(t, n));

  // Lazy-update contraction loop (serial: each step depends on the last).
  // Ties break on node id via the pair ordering, so the order is total
  // and deterministic.
  using Entry = std::pair<int64_t, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (NodeId v = 0; v < n; ++v) queue.push({priority[v], v});

  WitnessSearch witness(n);
  std::vector<Shortcut> shortcuts;
  uint32_t next_rank = 0;
  while (!queue.empty()) {
    const auto [stale, v] = queue.top();
    queue.pop();
    if (state.contracted[v]) continue;
    shortcuts.clear();
    const int64_t fresh =
        2 * (state.Simulate(v, witness, &shortcuts) - state.LiveDegree(v)) +
        state.deleted_neighbors[v];
    // Lazy update: if the fresh priority no longer beats the next
    // candidate's (possibly stale, but only ever too low) key, requeue.
    if (!queue.empty() && fresh > queue.top().first) {
      queue.push({fresh, v});
      continue;
    }
    state.contracted[v] = 1;
    ch->rank_[v] = next_rank++;
    for (const Shortcut& s : shortcuts) {
      state.InsertOrLighten(s.from, s.to, s.middle, s.weight);
      ++ch->num_shortcuts_;
    }
    // Bump the deleted-neighbors counters; the heap keys go stale but the
    // pop-time recompute corrects them (pure lazy updates — an eager
    // neighborhood refresh costs a witness sweep per neighbor per
    // contraction and buys little ordering quality on road networks).
    for (const BuildArc& arc : state.fwd[v]) {
      if (!state.contracted[arc.to]) ++state.deleted_neighbors[arc.to];
    }
    for (const BuildArc& arc : state.rev[v]) {
      if (!state.contracted[arc.to]) ++state.deleted_neighbors[arc.to];
    }
  }
  NC_CHECK_EQ(next_rank, n);

  // Final CSRs: every arc ever present, split by which endpoint ranks
  // higher. fwd[u] holds each (u, to) pair exactly once (min weight), so
  // the hierarchy has no parallel arcs.
  std::vector<uint32_t> up_count(n + 1, 0), down_count(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const BuildArc& arc : state.fwd[u]) {
      if (ch->rank_[arc.to] > ch->rank_[u]) {
        ++up_count[u + 1];
      } else {
        ++down_count[arc.to + 1];
      }
    }
  }
  for (size_t i = 1; i <= n; ++i) {
    up_count[i] += up_count[i - 1];
    down_count[i] += down_count[i - 1];
  }
  ch->up_.offsets = up_count;
  ch->down_.offsets = down_count;
  ch->up_.arcs.resize(up_count[n]);
  ch->down_.arcs.resize(down_count[n]);
  std::vector<uint32_t> up_pos(ch->up_.offsets.begin(),
                               ch->up_.offsets.end() - 1);
  std::vector<uint32_t> down_pos(ch->down_.offsets.begin(),
                                 ch->down_.offsets.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (const BuildArc& arc : state.fwd[u]) {
      if (ch->rank_[arc.to] > ch->rank_[u]) {
        ch->up_.arcs[up_pos[u]++] = {arc.to, arc.middle, arc.weight};
      } else {
        // Stored at the lower endpoint with `to` = the original tail u.
        ch->down_.arcs[down_pos[arc.to]++] = {u, arc.middle, arc.weight};
      }
    }
  }
  ch->FinalizeDerived();
  ch->build_seconds_ = timer.Seconds();
  NC_LOG_INFO << "ContractionHierarchy: " << n << " nodes, "
              << ch->num_shortcuts_ << " shortcuts, "
              << util::StrFormat("%.2f", ch->build_seconds_) << " s";
  return ch;
}

void ContractionHierarchy::FinalizeDerived() {
  by_rank_desc_.resize(rank_.size());
  for (NodeId v = 0; v < rank_.size(); ++v) {
    by_rank_desc_[rank_.size() - 1 - rank_[v]] = v;
  }
  auto build_sweep = [this](const Csr& csr, Sweep* sweep) {
    sweep->node.clear();
    sweep->offsets.assign(1, 0);
    sweep->to.clear();
    sweep->weight.clear();
    for (NodeId w : by_rank_desc_) {
      const std::span<const ChArc> arcs = csr.at(w);
      if (arcs.empty()) continue;
      sweep->node.push_back(w);
      for (const ChArc& arc : arcs) {
        sweep->to.push_back(arc.to);
        sweep->weight.push_back(arc.weight);
      }
      sweep->offsets.push_back(static_cast<uint32_t>(sweep->to.size()));
    }
  };
  build_sweep(down_, &sweep_fwd_);
  build_sweep(up_, &sweep_rev_);
}

std::unique_ptr<DistanceQuery> ContractionHierarchy::MakeQuery() const {
  return std::make_unique<ChQuery>(this);
}

uint64_t ContractionHierarchy::MemoryBytes() const {
  auto csr_bytes = [](const Csr& csr) {
    return csr.offsets.capacity() * sizeof(uint32_t) +
           csr.arcs.capacity() * sizeof(ChArc);
  };
  return rank_.capacity() * sizeof(uint32_t) +
         by_rank_desc_.capacity() * sizeof(NodeId) + csr_bytes(up_) +
         csr_bytes(down_);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void ContractionHierarchy::WriteTo(std::ostream& os) const {
  // max_digits10 so the double shortcut weights round-trip exactly — the
  // whole point of the backend is bit-identical distances.
  const auto saved_precision = os.precision();
  os << std::setprecision(17);
  os << "ch " << rank_.size() << " " << num_shortcuts_ << " "
     << build_seconds_ << "\n";
  os << "rank";
  for (uint32_t r : rank_) os << " " << r;
  os << "\n";
  auto write_csr = [&os](const Csr& csr) {
    os << csr.arcs.size();
    for (size_t u = 0; u + 1 < csr.offsets.size(); ++u) {
      for (size_t i = csr.offsets[u]; i < csr.offsets[u + 1]; ++i) {
        const ChArc& arc = csr.arcs[i];
        os << "\n" << u << " " << arc.to << " " << arc.middle << " "
           << arc.weight;
      }
    }
    os << "\n";
  };
  os << "up ";
  write_csr(up_);
  os << "down ";
  write_csr(down_);
  os << "end_ch\n";
  os << std::setprecision(static_cast<int>(saved_precision));
}

bool ContractionHierarchy::ReadFrom(std::istream& is, const RoadNetwork* net,
                                    std::unique_ptr<ContractionHierarchy>* out,
                                    std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = "ch backend: " + message;
    return false;
  };
  std::string token;
  size_t n = 0;
  auto ch = std::unique_ptr<ContractionHierarchy>(
      new ContractionHierarchy(net));
  if (!(is >> token) || token != "ch") return fail("missing header");
  if (!(is >> n >> ch->num_shortcuts_ >> ch->build_seconds_)) {
    return fail("bad header line");
  }
  if (n != net->num_nodes()) {
    return fail("hierarchy over a different network size");
  }
  if (!(is >> token) || token != "rank") return fail("missing rank");
  ch->rank_.resize(n);
  std::vector<uint8_t> seen(n, 0);
  for (auto& r : ch->rank_) {
    if (!(is >> r) || r >= n || seen[r]) return fail("bad rank permutation");
    seen[r] = 1;
  }
  auto read_csr = [&](const char* tag, Csr* csr) {
    size_t arc_count = 0;
    if (!(is >> token) || token != tag || !(is >> arc_count)) {
      return fail(std::string("bad ") + tag + " header");
    }
    csr->offsets.assign(n + 1, 0);
    csr->arcs.resize(arc_count);
    size_t prev_u = 0;
    for (size_t i = 0; i < arc_count; ++i) {
      size_t u = 0;
      ChArc& arc = csr->arcs[i];
      if (!(is >> u >> arc.to >> arc.middle >> arc.weight)) {
        return fail(std::string("truncated ") + tag + " arcs");
      }
      if (u >= n || u < prev_u || arc.to >= n ||
          (arc.middle != kInvalidNode && arc.middle >= n) ||
          !(arc.weight >= 0.0)) {
        return fail(std::string("invalid ") + tag + " arc");
      }
      prev_u = u;
      ++csr->offsets[u + 1];
    }
    for (size_t i = 1; i <= n; ++i) csr->offsets[i] += csr->offsets[i - 1];
    return true;
  };
  if (!read_csr("up", &ch->up_)) return false;
  if (!read_csr("down", &ch->down_)) return false;
  if (!(is >> token) || token != "end_ch") return fail("missing end_ch");
  ch->FinalizeDerived();
  *out = std::move(ch);
  return true;
}

// ---------------------------------------------------------------------------
// ChQuery
// ---------------------------------------------------------------------------

ChQuery::ChQuery(const ContractionHierarchy* ch) : ch_(ch) {
  const size_t n = ch->rank_.size();
  for (int side = 0; side < 2; ++side) {
    dist_[side].resize(n, kInfDistance);
    stamp_[side].resize(n, 0);
    parent_node_[side].resize(n, kInvalidNode);
    parent_arc_[side].resize(n, 0);
    om_dist_[side].resize(n, kInfDistance);
  }
}

void ChQuery::SetDist(int side, NodeId v, double d) {
  stamp_[side][v] = epoch_;
  dist_[side][v] = d;
}

void ChQuery::NewEpoch() {
  ++epoch_;
  if (epoch_ == 0) {
    for (int side = 0; side < 2; ++side) {
      std::fill(stamp_[side].begin(), stamp_[side].end(), 0u);
    }
    epoch_ = 1;
  }
  for (int side = 0; side < 2; ++side) {
    while (!heap_[side].empty()) heap_[side].pop();
  }
  last_settled_ = 0;
}

void ChQuery::ResetOneToMany(int side) {
  for (NodeId v : om_touched_[side]) om_dist_[side][v] = kInfDistance;
  om_touched_[side].clear();
}

void ChQuery::OneToMany(NodeId source, double limit, Direction dir,
                        int side) {
  ResetOneToMany(side);
  // Meet() can return with leftover heap entries (a side deactivates when
  // its top reaches mu); they would pass the staleness check against the
  // freshly reset labels, so drain them.
  while (!heap_[side].empty()) heap_[side].pop();
  std::vector<double>& dist = om_dist_[side];
  std::vector<NodeId>& touched = om_touched_[side];
  auto label = [&](NodeId v, double d) {
    if (dist[v] == kInfDistance) touched.push_back(v);
    dist[v] = d;
  };
  // Upward phase: plain Dijkstra over the (small) upward graph. Labels
  // here may overshoot the true distance; the sweep fixes them.
  const ContractionHierarchy::Csr& up =
      dir == Direction::kForward ? ch_->up_ : ch_->down_;
  label(source, 0.0);
  heap_[side].push({0.0, source});
  while (!heap_[side].empty()) {
    const auto [d, u] = heap_[side].top();
    heap_[side].pop();
    if (d > dist[u]) continue;
    ++last_settled_;
    for (const ChArc& arc : up.at(u)) {
      const double nd = d + arc.weight;
      if (nd <= limit && nd < dist[arc.to]) {
        label(arc.to, nd);
        heap_[side].push({nd, arc.to});
      }
    }
  }
  // Downward sweep (PHAST): the groups stream in descending rank order,
  // so the relax source (always higher-ranked) is final before it is
  // read. One linear pass, no heap.
  const ContractionHierarchy::Sweep& sweep =
      dir == Direction::kForward ? ch_->sweep_fwd_ : ch_->sweep_rev_;
  for (size_t g = 0; g < sweep.node.size(); ++g) {
    const NodeId w = sweep.node[g];
    double best = dist[w];
    // Branch-free relax: an unlabeled source is kInfDistance, and inf + w
    // never wins the min; the radius filter moves after the loop (the
    // min over candidates is <= limit iff any candidate is).
    for (uint32_t i = sweep.offsets[g]; i < sweep.offsets[g + 1]; ++i) {
      best = std::min(best, dist[sweep.to[i]] + sweep.weight[i]);
    }
    if (best < dist[w] && best <= limit) {
      label(w, best);
      ++last_settled_;
    }
  }
}

std::vector<Settled> ChQuery::BoundedSearch(NodeId source, double radius,
                                            Direction dir) {
  NC_CHECK_LT(source, ch_->rank_.size());
  last_settled_ = 0;
  OneToMany(source, radius, dir, 0);
  std::vector<Settled> out;
  out.reserve(om_touched_[0].size());
  for (NodeId v : om_touched_[0]) {
    const double d = om_dist_[0][v];
    if (d <= radius) out.push_back({v, d});
  }
  // Dijkstra settles in non-decreasing (distance, node) order; match it.
  std::sort(out.begin(), out.end(), [](const Settled& a, const Settled& b) {
    return a.distance < b.distance ||
           (util::BitEqual(a.distance, b.distance) && a.node < b.node);
  });
  return out;
}

std::vector<double> ChQuery::FullSearch(NodeId source, Direction dir) {
  NC_CHECK_LT(source, ch_->rank_.size());
  last_settled_ = 0;
  OneToMany(source, kInfDistance, dir, 0);
  std::vector<double> out(ch_->rank_.size(), kInfDistance);
  for (NodeId v : om_touched_[0]) out[v] = om_dist_[0][v];
  return out;
}

std::vector<RoundTrip> ChQuery::BoundedRoundTrip(NodeId source,
                                                 double radius) {
  NC_CHECK_LT(source, ch_->rank_.size());
  last_settled_ = 0;
  OneToMany(source, radius, Direction::kForward, 0);
  OneToMany(source, radius, Direction::kReverse, 1);
  // Intersect the two label sets on node id (sorted, like the Dijkstra
  // engine's merge). When the forward ball covers a sizable share of the
  // graph — the regime this backend exists for — a sequential scan of the
  // label array is cheaper than sorting the touched list.
  const size_t n = ch_->rank_.size();
  std::vector<RoundTrip> out;
  if (om_touched_[0].size() >= n / 8) {
    for (NodeId v = 0; v < n; ++v) {
      const double fwd = om_dist_[0][v];
      if (fwd > radius) continue;
      const double rev = om_dist_[1][v];
      if (rev > radius) continue;
      if (fwd + rev <= radius) out.push_back({v, fwd, rev});
    }
    return out;
  }
  std::sort(om_touched_[0].begin(), om_touched_[0].end());
  for (NodeId v : om_touched_[0]) {
    const double fwd = om_dist_[0][v];
    const double rev = om_dist_[1][v];
    if (fwd > radius || rev > radius) continue;
    if (fwd + rev <= radius) out.push_back({v, fwd, rev});
  }
  return out;
}

double ChQuery::Meet(NodeId s, NodeId t, double limit, bool track_parents,
                     NodeId* meet) {
  NewEpoch();
  SetDist(0, s, 0.0);
  parent_node_[0][s] = kInvalidNode;
  heap_[0].push({0.0, s});
  SetDist(1, t, 0.0);
  parent_node_[1][t] = kInvalidNode;
  heap_[1].push({0.0, t});

  double mu = kInfDistance;
  *meet = kInvalidNode;
  auto offer = [&](NodeId v, double total) {
    if (total < mu) {
      mu = total;
      *meet = v;
    }
  };
  // Both searches run to exhaustion of keys below μ: upward labels may be
  // non-minimal, but every up-down shortest path's apex is eventually
  // offered from whichever side settles it second.
  bool active[2] = {true, true};
  while (active[0] || active[1]) {
    int side = -1;
    double best_top = kInfDistance;
    for (int i = 0; i < 2; ++i) {
      if (!active[i]) continue;
      if (heap_[i].empty() || heap_[i].top().first >= mu ||
          heap_[i].top().first > limit) {
        active[i] = false;
        continue;
      }
      if (heap_[i].top().first < best_top) {
        best_top = heap_[i].top().first;
        side = i;
      }
    }
    if (side < 0) break;
    const auto [d, u] = heap_[side].top();
    heap_[side].pop();
    if (d > DistOf(side, u)) continue;
    ++last_settled_;
    if (DistOf(1 - side, u) != kInfDistance) {
      offer(u, d + DistOf(1 - side, u));
    }
    const ContractionHierarchy::Csr& up = side == 0 ? ch_->up_ : ch_->down_;
    const std::span<const ChArc> arcs = up.at(u);
    for (size_t i = 0; i < arcs.size(); ++i) {
      const ChArc& arc = arcs[i];
      const double nd = d + arc.weight;
      if (nd <= limit && nd < DistOf(side, arc.to)) {
        SetDist(side, arc.to, nd);
        if (track_parents) {
          parent_node_[side][arc.to] = u;
          parent_arc_[side][arc.to] =
              static_cast<uint32_t>(up.offsets[u] + i);
        }
        heap_[side].push({nd, arc.to});
        if (DistOf(1 - side, arc.to) != kInfDistance) {
          offer(arc.to, nd + DistOf(1 - side, arc.to));
        }
      }
    }
  }
  return mu <= limit ? mu : kInfDistance;
}

double ChQuery::PointToPoint(NodeId s, NodeId t, double radius) {
  NC_CHECK_LT(s, ch_->rank_.size());
  NC_CHECK_LT(t, ch_->rank_.size());
  if (s == t) return 0.0;
  NodeId meet = kInvalidNode;
  return Meet(s, t, radius < 0.0 ? kInfDistance : radius, false, &meet);
}

void ChQuery::ExpandArc(NodeId u, NodeId v, NodeId middle,
                        std::vector<NodeId>* path) const {
  if (middle == kInvalidNode) {
    path->push_back(v);
    return;
  }
  // The two halves rank above `middle` by construction, so (u, middle)
  // lives in down_.at(middle) and (middle, v) in up_.at(middle). Pick the
  // lightest match: it can only have been lightened since the shortcut was
  // made, so the unpacked walk is never longer than the shortcut.
  const ChArc* half = nullptr;
  for (const ChArc& arc : ch_->down_.at(middle)) {
    if (arc.to == u && (half == nullptr || arc.weight < half->weight)) {
      half = &arc;
    }
  }
  NC_CHECK(half != nullptr) << "CH unpack: missing arc into middle";
  ExpandArc(u, middle, half->middle, path);
  half = nullptr;
  for (const ChArc& arc : ch_->up_.at(middle)) {
    if (arc.to == v && (half == nullptr || arc.weight < half->weight)) {
      half = &arc;
    }
  }
  NC_CHECK(half != nullptr) << "CH unpack: missing arc out of middle";
  ExpandArc(middle, v, half->middle, path);
}

std::vector<NodeId> ChQuery::ShortestPath(NodeId s, NodeId t, double radius) {
  NC_CHECK_LT(s, ch_->rank_.size());
  NC_CHECK_LT(t, ch_->rank_.size());
  if (s == t) return {s};
  NodeId meet = kInvalidNode;
  if (Meet(s, t, radius < 0.0 ? kInfDistance : radius, true, &meet) ==
      kInfDistance) {
    return {};
  }
  // CH arcs on the two upward branches, apex first.
  std::vector<uint32_t> fwd_arcs;
  for (NodeId v = meet; parent_node_[0][v] != kInvalidNode;
       v = parent_node_[0][v]) {
    fwd_arcs.push_back(parent_arc_[0][v]);
  }
  std::vector<NodeId> path{s};
  for (auto it = fwd_arcs.rbegin(); it != fwd_arcs.rend(); ++it) {
    const ChArc& arc = ch_->up_.arcs[*it];
    // Arc runs parent -> arc-target; the walk already ends at the parent.
    ExpandArc(path.back(), arc.to, arc.middle, &path);
  }
  // Backward branch: each down_ arc (to=tail v, at node w) was traversed
  // t-side, so the original direction is path.back() -> w.
  for (NodeId v = meet; parent_node_[1][v] != kInvalidNode;) {
    const NodeId w = parent_node_[1][v];
    const ChArc& arc = ch_->down_.arcs[parent_arc_[1][v]];
    ExpandArc(path.back(), w, arc.middle, &path);
    v = w;
  }
  return path;
}

}  // namespace netclus::graph::spf
