// Pluggable shortest-path subsystem.
//
// All of NetClus's distance needs (covering sets, GDSP domination, cluster
// neighbor lists, τ-range estimation, map-matcher transitions, query-time
// detour checks) funnel through four search primitives. This header splits
// them from the concrete Dijkstra implementation so the whole system can be
// pointed at a different engine — today plain Dijkstra, bidirectional
// Dijkstra, or Contraction Hierarchies — with one knob
// (Engine::Options::distance_backend / the NETCLUS_SPF env var).
//
// Exactness contract: every backend returns *bit-identical* distances to
// the unidirectional Dijkstra oracle. This is achievable without epsilons
// because arc weights are floats accumulated in doubles: every partial sum
// of meter-scale float weights is exactly representable in a double (a
// float contributes 24 significand bits; path lengths stay far below the
// 2^53 headroom), so addition never rounds and path sums are
// order-independent. Backends that precompute combined weights (CH
// shortcuts) must therefore store them as doubles, never narrowed back to
// float. tests/test_spf.cc enforces the contract differentially.
//
// Concurrency model: a DistanceBackend is immutable once constructed and
// may be shared by any number of threads; per-thread mutable search state
// (distance labels, heaps) lives in DistanceQuery workspaces obtained from
// MakeQuery(). This mirrors how DijkstraEngine was already used (one
// engine per worker), so call sites keep their structure.
#ifndef NETCLUS_GRAPH_SPF_DISTANCE_BACKEND_H_
#define NETCLUS_GRAPH_SPF_DISTANCE_BACKEND_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/road_network.h"

namespace netclus::graph {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Search direction: forward follows arcs u -> v (distances d(source, v));
/// reverse follows them backwards (distances d(v, source)).
enum class Direction {
  kForward,
  kReverse,
};

/// A settled node with its distance from (or to) the source.
struct Settled {
  NodeId node;
  double distance;
};

/// A node's forward and reverse distances from a source, i.e. the two legs
/// of the round trip source -> node -> source.
struct RoundTrip {
  NodeId node;
  double out_distance;   ///< d(source, node)
  double back_distance;  ///< d(node, source)

  double total() const { return out_distance + back_distance; }
};

namespace spf {

/// Selects the shortest-path implementation behind DistanceQuery.
enum class BackendKind : uint8_t {
  /// Resolve via the NETCLUS_SPF env var ("dijkstra", "bidir", "ch");
  /// unset or unparseable means kDijkstra. Mirrors the `threads == 0`
  /// convention of the parallel subsystem.
  kDefault = 0,
  kDijkstra,                ///< unidirectional Dijkstra (the oracle)
  kBidirectional,           ///< bidirectional Dijkstra for point-to-point
  kContractionHierarchies,  ///< CH: preprocessing-based distance oracle
};

/// Canonical lowercase name ("dijkstra", "bidir", "ch", "default").
const char* BackendName(BackendKind kind);

/// Inverse of BackendName; also accepts "bidirectional" and "contraction".
std::optional<BackendKind> ParseBackendName(std::string_view name);

/// kDefault -> the NETCLUS_SPF environment default (itself kDijkstra when
/// unset); concrete kinds pass through.
BackendKind ResolveBackendKind(BackendKind kind);

/// A per-thread search workspace. Thread-compatible, not thread-safe:
/// every method reuses internal label arrays, exactly like the original
/// DijkstraEngine. Obtain one per worker via DistanceBackend::MakeQuery().
class DistanceQuery {
 public:
  virtual ~DistanceQuery() = default;

  /// All nodes with distance <= radius from `source` in the given
  /// direction, in non-decreasing distance order (the source itself is
  /// included with distance 0).
  virtual std::vector<Settled> BoundedSearch(NodeId source, double radius,
                                             Direction dir) = 0;

  /// One-to-all distances; unreachable nodes get kInfDistance.
  virtual std::vector<double> FullSearch(NodeId source, Direction dir) = 0;

  /// Shortest-path distance from s to t, or kInfDistance. `radius` (if
  /// >= 0) truncates the search.
  virtual double PointToPoint(NodeId s, NodeId t, double radius = -1.0) = 0;

  /// Nodes whose round trip source -> v -> source is at most `radius`,
  /// with both legs. Sorted by node id.
  virtual std::vector<RoundTrip> BoundedRoundTrip(NodeId source,
                                                  double radius) = 0;

  /// Shortest path from s to t as a node sequence (s first, t last). Empty
  /// if unreachable within `radius` (negative radius = unbounded).
  virtual std::vector<NodeId> ShortestPath(NodeId s, NodeId t,
                                           double radius = -1.0) = 0;

  /// Nodes settled (or swept, for CH's batched one-to-many) by the last
  /// search, for complexity reporting.
  virtual size_t last_settled_count() const = 0;
};

/// An immutable, shareable distance oracle over one RoadNetwork. Holds any
/// preprocessed structure (CH hierarchy); hands out per-thread query
/// workspaces. The network must outlive the backend.
class DistanceBackend {
 public:
  virtual ~DistanceBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual std::unique_ptr<DistanceQuery> MakeQuery() const = 0;

  /// Analytic footprint of the preprocessed structure, bytes (0 when the
  /// backend has none).
  virtual uint64_t MemoryBytes() const = 0;

  /// Preprocessing wall time, seconds (0 when there is none).
  virtual double build_seconds() const { return 0.0; }

  const RoadNetwork& network() const { return *net_; }

 protected:
  explicit DistanceBackend(const RoadNetwork* net) : net_(net) {}
  const RoadNetwork* net_;
};

/// Builds a backend of the given kind (kDefault resolves NETCLUS_SPF).
/// `threads` parallelizes CH preprocessing (0 = NETCLUS_THREADS default);
/// the resulting structure is identical at any thread count.
std::shared_ptr<const DistanceBackend> MakeBackend(BackendKind kind,
                                                   const RoadNetwork* net,
                                                   uint32_t threads = 0);

/// Workspace from `backend`, or a plain Dijkstra workspace over `net` when
/// `backend` is null. The fallback keeps call sites that predate the
/// subsystem (standalone CoverageIndex::Build, ClusterIndex::Build without
/// an Engine) byte-for-byte on their original code path.
std::unique_ptr<DistanceQuery> MakeQueryOrDijkstra(
    const DistanceBackend* backend, const RoadNetwork* net);

}  // namespace spf
}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_SPF_DISTANCE_BACKEND_H_
