#include "graph/spf/bidirectional_dijkstra.h"

#include <algorithm>

#include "util/logging.h"

namespace netclus::graph::spf {

BidirectionalQuery::BidirectionalQuery(const RoadNetwork* net)
    : net_(net), fallback_(net) {
  NC_CHECK(net != nullptr);
  for (int side = 0; side < 2; ++side) {
    dist_[side].resize(net->num_nodes(), kInfDistance);
    stamp_[side].resize(net->num_nodes(), 0);
    parent_[side].resize(net->num_nodes(), kInvalidNode);
  }
}

void BidirectionalQuery::NewEpoch() {
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(stamp_[0].begin(), stamp_[0].end(), 0u);
    std::fill(stamp_[1].begin(), stamp_[1].end(), 0u);
    epoch_ = 1;
  }
  for (int side = 0; side < 2; ++side) {
    while (!heap_[side].empty()) heap_[side].pop();
  }
}

double BidirectionalQuery::Meet(NodeId s, NodeId t, double limit,
                                NodeId* meet) {
  NewEpoch();
  last_settled_ = 0;
  SetDist(0, s, 0.0);
  parent_[0][s] = kInvalidNode;
  heap_[0].push({0.0, s});
  SetDist(1, t, 0.0);
  parent_[1][t] = kInvalidNode;
  heap_[1].push({0.0, t});

  double mu = kInfDistance;
  *meet = kInvalidNode;
  auto offer = [&](NodeId v, double total) {
    if (total < mu) {
      mu = total;
      *meet = v;
    }
  };

  while (!heap_[0].empty() || !heap_[1].empty()) {
    const double top_f = heap_[0].empty() ? kInfDistance : heap_[0].top().first;
    const double top_b = heap_[1].empty() ? kInfDistance : heap_[1].top().first;
    // Termination: any undiscovered s-t path costs at least top_f + top_b.
    if (top_f + top_b >= mu) break;
    if (std::min(top_f, top_b) > limit) break;
    const int side = top_f <= top_b ? 0 : 1;
    const int other = 1 - side;
    const auto [d, u] = heap_[side].top();
    heap_[side].pop();
    if (d > DistOf(side, u)) continue;  // stale entry
    ++last_settled_;
    if (DistOf(other, u) != kInfDistance) offer(u, d + DistOf(other, u));
    const auto arcs =
        side == 0 ? net_->OutArcs(u) : net_->InArcs(u);
    for (const Arc& arc : arcs) {
      const double nd = d + arc.weight;
      if (nd <= limit && nd < DistOf(side, arc.to)) {
        SetDist(side, arc.to, nd);
        parent_[side][arc.to] = u;
        heap_[side].push({nd, arc.to});
        if (DistOf(other, arc.to) != kInfDistance) {
          offer(arc.to, nd + DistOf(other, arc.to));
        }
      }
    }
  }
  return mu <= limit ? mu : kInfDistance;
}

double BidirectionalQuery::PointToPoint(NodeId s, NodeId t, double radius) {
  NC_CHECK_LT(s, net_->num_nodes());
  NC_CHECK_LT(t, net_->num_nodes());
  if (s == t) return 0.0;
  const double limit = radius < 0.0 ? kInfDistance : radius;
  NodeId meet = kInvalidNode;
  return Meet(s, t, limit, &meet);
}

std::vector<NodeId> BidirectionalQuery::ShortestPath(NodeId s, NodeId t,
                                                     double radius) {
  NC_CHECK_LT(s, net_->num_nodes());
  NC_CHECK_LT(t, net_->num_nodes());
  if (s == t) return {s};
  const double limit = radius < 0.0 ? kInfDistance : radius;
  NodeId meet = kInvalidNode;
  if (Meet(s, t, limit, &meet) == kInfDistance) return {};
  // Stitch the two parent chains at the meeting node.
  std::vector<NodeId> path;
  for (NodeId v = meet; v != kInvalidNode; v = parent_[0][v]) {
    path.push_back(v);
    if (v == s) break;
  }
  std::reverse(path.begin(), path.end());
  for (NodeId v = parent_[1][meet]; v != kInvalidNode; v = parent_[1][v]) {
    path.push_back(v);
    if (v == t) break;
  }
  return path;
}

}  // namespace netclus::graph::spf
