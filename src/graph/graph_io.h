// Text serialization of road networks.
//
// Format (line-oriented, '#' comments allowed):
//   netclus-graph v1
//   nodes <N>
//   <x> <y>              (N lines, meters in the local frame)
//   edges <E>
//   <u> <v> <length_m>   (E lines)
#ifndef NETCLUS_GRAPH_GRAPH_IO_H_
#define NETCLUS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/road_network.h"

namespace netclus::graph {

/// Writes `net` to the stream in the text format above.
void WriteGraph(const RoadNetwork& net, std::ostream& os);

/// Reads a network from the stream. Returns false (and leaves `net`
/// untouched) on malformed input; `error` receives a description.
bool ReadGraph(std::istream& is, RoadNetwork* net, std::string* error);

/// File convenience wrappers.
bool SaveGraph(const RoadNetwork& net, const std::string& path, std::string* error);
bool LoadGraph(const std::string& path, RoadNetwork* net, std::string* error);

}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_GRAPH_IO_H_
