// Strongly connected components.
//
// Generated city networks (one-way streets, pruned edges) can leave small
// unreachable pockets; all datasets are restricted to the largest SCC so
// that round-trip distances are finite, as the paper implicitly assumes.
#ifndef NETCLUS_GRAPH_SCC_H_
#define NETCLUS_GRAPH_SCC_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace netclus::graph {

/// Tarjan SCC (iterative). Returns component id per node; ids are dense,
/// 0-based, in reverse topological order of the condensation.
std::vector<uint32_t> StronglyConnectedComponents(const RoadNetwork& net,
                                                  uint32_t* num_components);

/// Rebuilds the network restricted to its largest SCC. `old_to_new` (if not
/// null) receives the node id mapping (kInvalidNode for dropped nodes).
RoadNetwork RestrictToLargestScc(const RoadNetwork& net,
                                 std::vector<NodeId>* old_to_new);

}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_SCC_H_
