// Dijkstra shortest-path family over RoadNetwork.
//
// All of NetClus's distance needs reduce to four primitives:
//  * bounded one-to-many search (forward or reverse) — covering sets (Sec.
//    3.2), GDSP dominating sets (Sec. 4.1.2), cluster neighbor lists (4.3);
//  * full one-to-all search — small-instance exact baselines and tests;
//  * point-to-point distance with early exit — map-matcher transitions,
//    τ_min/τ_max estimation;
//  * round-trip bounded search — nodes v with d(s,v) + d(v,s) ≤ r.
//
// DijkstraEngine owns reusable distance/stamp arrays so that running many
// bounded searches (one per site, one per GDSP vertex) costs O(settled)
// each instead of O(N) re-initialization.
#ifndef NETCLUS_GRAPH_DIJKSTRA_H_
#define NETCLUS_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "graph/road_network.h"

namespace netclus::graph {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Search direction: forward follows arcs u -> v (distances d(source, v));
/// reverse follows them backwards (distances d(v, source)).
enum class Direction {
  kForward,
  kReverse,
};

/// A settled node with its distance from (or to) the source.
struct Settled {
  NodeId node;
  double distance;
};

/// A node's forward and reverse distances from a source, i.e. the two legs
/// of the round trip source -> node -> source.
struct RoundTrip {
  NodeId node;
  double out_distance;   ///< d(source, node)
  double back_distance;  ///< d(node, source)

  double total() const { return out_distance + back_distance; }
};

class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork* net);

  /// All nodes with distance <= radius from `source` in the given direction,
  /// in non-decreasing distance order (the source itself is included with
  /// distance 0).
  std::vector<Settled> BoundedSearch(NodeId source, double radius,
                                     Direction dir);

  /// One-to-all distances; unreachable nodes get kInfDistance.
  std::vector<double> FullSearch(NodeId source, Direction dir);

  /// Shortest-path distance from s to t, or kInfDistance. Early-exits when
  /// t is settled. `radius` (if >= 0) truncates the search.
  double PointToPoint(NodeId s, NodeId t, double radius = -1.0);

  /// Nodes whose round trip source -> v -> source is at most `radius`,
  /// with both legs. Sorted by node id.
  std::vector<RoundTrip> BoundedRoundTrip(NodeId source, double radius);

  /// Shortest path from s to t as a node sequence (s first, t last). Empty
  /// if unreachable within `radius` (negative radius = unbounded).
  std::vector<NodeId> ShortestPath(NodeId s, NodeId t, double radius = -1.0);

  /// Number of nodes settled by the last search (for complexity reporting).
  size_t last_settled_count() const { return last_settled_; }

  const RoadNetwork& network() const { return *net_; }

 private:
  // Stamped distance array: dist_[v] is valid only when stamp_[v] == epoch_.
  double DistOf(NodeId v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kInfDistance;
  }
  void SetDist(NodeId v, double d) {
    stamp_[v] = epoch_;
    dist_[v] = d;
  }
  void NewEpoch();

  const RoadNetwork* net_;
  std::vector<double> dist_;
  std::vector<uint32_t> stamp_;
  std::vector<NodeId> parent_;  // valid only under the same stamp as dist_
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
};

}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_DIJKSTRA_H_
