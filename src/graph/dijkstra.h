// Dijkstra shortest-path family over RoadNetwork.
//
// All of NetClus's distance needs reduce to four primitives:
//  * bounded one-to-many search (forward or reverse) — covering sets (Sec.
//    3.2), GDSP dominating sets (Sec. 4.1.2), cluster neighbor lists (4.3);
//  * full one-to-all search — small-instance exact baselines and tests;
//  * point-to-point distance with early exit — map-matcher transitions,
//    τ_min/τ_max estimation;
//  * round-trip bounded search — nodes v with d(s,v) + d(v,s) ≤ r.
//
// DijkstraEngine is the reference implementation of the pluggable
// spf::DistanceQuery interface (src/graph/spf/): it is the oracle every
// other backend must match bit-for-bit. It owns reusable distance/stamp
// arrays so that running many bounded searches (one per site, one per GDSP
// vertex) costs O(settled) each instead of O(N) re-initialization.
#ifndef NETCLUS_GRAPH_DIJKSTRA_H_
#define NETCLUS_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "graph/road_network.h"
#include "graph/spf/distance_backend.h"

namespace netclus::graph {

class DijkstraEngine : public spf::DistanceQuery {
 public:
  explicit DijkstraEngine(const RoadNetwork* net);

  std::vector<Settled> BoundedSearch(NodeId source, double radius,
                                     Direction dir) override;

  std::vector<double> FullSearch(NodeId source, Direction dir) override;

  /// Early-exits as soon as the target's label is provably final: at each
  /// pop with key d, any label ≥ d can no longer improve t, so when
  /// dist(t) <= d the search stops without settling the remaining tie-cost
  /// frontier (see DijkstraVisitedNodes regression test).
  double PointToPoint(NodeId s, NodeId t, double radius = -1.0) override;

  std::vector<RoundTrip> BoundedRoundTrip(NodeId source,
                                          double radius) override;

  std::vector<NodeId> ShortestPath(NodeId s, NodeId t,
                                   double radius = -1.0) override;

  /// Number of nodes settled by the last search (for complexity reporting).
  size_t last_settled_count() const override { return last_settled_; }

  const RoadNetwork& network() const { return *net_; }

 private:
  // Stamped distance array: dist_[v] is valid only when stamp_[v] == epoch_.
  double DistOf(NodeId v) const {
    return stamp_[v] == epoch_ ? dist_[v] : kInfDistance;
  }
  void SetDist(NodeId v, double d) {
    stamp_[v] = epoch_;
    dist_[v] = d;
  }
  void NewEpoch();

  const RoadNetwork* net_;
  std::vector<double> dist_;
  std::vector<uint32_t> stamp_;
  std::vector<NodeId> parent_;  // valid only under the same stamp as dist_
  uint32_t epoch_ = 0;
  size_t last_settled_ = 0;

  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
};

}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_DIJKSTRA_H_
