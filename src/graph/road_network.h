// Directed weighted road network in CSR (compressed sparse row) form.
//
// Models Section 2 of the paper: nodes are road intersections, directed
// edges are road segments with traffic direction, weights are segment
// lengths in meters. Candidate sites living in the middle of a road segment
// are accommodated by splitting the edge at build time (Builder::SplitEdge),
// after which S ⊆ V as the paper assumes.
#ifndef NETCLUS_GRAPH_ROAD_NETWORK_H_
#define NETCLUS_GRAPH_ROAD_NETWORK_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace netclus::graph {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// One outgoing (or incoming, in the reverse view) arc.
struct Arc {
  NodeId to;      ///< head node (tail node in the reverse view)
  float weight;   ///< length in meters, non-negative
};

class RoadNetwork;

/// Incremental construction of a RoadNetwork. Nodes carry planar positions
/// (meters); edges carry lengths. Parallel edges are allowed (the shorter
/// one wins during search); self-loops are dropped.
class RoadNetworkBuilder {
 public:
  /// Adds a node at position `p`; returns its id (dense, in insertion order).
  NodeId AddNode(const geo::Point& p);

  /// Adds a directed edge u -> v with the given length in meters. If
  /// `length_m` is negative, the Euclidean distance between endpoints is
  /// used.
  void AddEdge(NodeId u, NodeId v, double length_m = -1.0);

  /// Adds edges u -> v and v -> u (two-way street).
  void AddBidirectional(NodeId u, NodeId v, double length_m = -1.0);

  /// Splits the previously added edge u -> v at fraction `t` in (0,1),
  /// inserting a new node there (for a mid-edge candidate site, Sec. 2).
  /// Returns the new node id. All (u,v) parallel edges are split.
  NodeId SplitEdge(NodeId u, NodeId v, double t);

  size_t num_nodes() const { return points_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes into an immutable CSR network.
  RoadNetwork Build() &&;

 private:
  friend class RoadNetwork;
  struct PendingEdge {
    NodeId u;
    NodeId v;
    float weight;
  };
  std::vector<geo::Point> points_;
  std::vector<PendingEdge> edges_;
};

/// Immutable CSR road network with forward and reverse adjacency.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  size_t num_nodes() const { return points_.size(); }
  size_t num_edges() const { return fwd_arcs_.size(); }

  /// Outgoing arcs of `u`.
  std::span<const Arc> OutArcs(NodeId u) const {
    return {fwd_arcs_.data() + fwd_offsets_[u],
            fwd_arcs_.data() + fwd_offsets_[u + 1]};
  }

  /// Incoming arcs of `u`, expressed as arcs in the reverse graph
  /// (arc.to is the *tail* of the original edge).
  std::span<const Arc> InArcs(NodeId u) const {
    return {rev_arcs_.data() + rev_offsets_[u],
            rev_arcs_.data() + rev_offsets_[u + 1]};
  }

  const geo::Point& position(NodeId u) const { return points_[u]; }
  const std::vector<geo::Point>& positions() const { return points_; }

  /// Bounding box of all node positions.
  geo::BBox Bounds() const;

  /// Total length of all directed edges, meters.
  double TotalEdgeLengthMeters() const;

  /// Analytic memory footprint of the CSR arrays, bytes.
  uint64_t MemoryBytes() const;

  /// Straight-line distance between two nodes, meters (lower bound on the
  /// network distance; used by A*-style pruning and sanity checks).
  double EuclideanMeters(NodeId u, NodeId v) const {
    return geo::Distance(points_[u], points_[v]);
  }

 private:
  friend class RoadNetworkBuilder;

  std::vector<geo::Point> points_;
  std::vector<uint32_t> fwd_offsets_;  // size N+1
  std::vector<Arc> fwd_arcs_;
  std::vector<uint32_t> rev_offsets_;  // size N+1
  std::vector<Arc> rev_arcs_;
};

}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_ROAD_NETWORK_H_
