#include "graph/road_network.h"

#include <algorithm>

#include "util/logging.h"
#include "util/memory.h"

namespace netclus::graph {

NodeId RoadNetworkBuilder::AddNode(const geo::Point& p) {
  points_.push_back(p);
  return static_cast<NodeId>(points_.size() - 1);
}

void RoadNetworkBuilder::AddEdge(NodeId u, NodeId v, double length_m) {
  NC_CHECK_LT(u, points_.size());
  NC_CHECK_LT(v, points_.size());
  if (u == v) return;  // self-loops carry no routing information
  if (length_m < 0.0) length_m = geo::Distance(points_[u], points_[v]);
  edges_.push_back({u, v, static_cast<float>(length_m)});
}

void RoadNetworkBuilder::AddBidirectional(NodeId u, NodeId v, double length_m) {
  AddEdge(u, v, length_m);
  AddEdge(v, u, length_m);
}

NodeId RoadNetworkBuilder::SplitEdge(NodeId u, NodeId v, double t) {
  NC_CHECK_GT(t, 0.0);
  NC_CHECK_LT(t, 1.0);
  const geo::Point pu = points_[u];
  const geo::Point pv = points_[v];
  const NodeId w = AddNode({pu.x + t * (pv.x - pu.x), pu.y + t * (pv.y - pu.y)});
  bool found = false;
  std::vector<PendingEdge> kept;
  kept.reserve(edges_.size());
  for (const PendingEdge& e : edges_) {
    if (e.u == u && e.v == v) {
      found = true;
      kept.push_back({u, w, static_cast<float>(e.weight * t)});
      kept.push_back({w, v, static_cast<float>(e.weight * (1.0 - t))});
    } else if (e.u == v && e.v == u) {
      // Two-way street: split the opposite direction symmetrically.
      kept.push_back({v, w, static_cast<float>(e.weight * (1.0 - t))});
      kept.push_back({w, u, static_cast<float>(e.weight * t)});
    } else {
      kept.push_back(e);
    }
  }
  NC_CHECK(found) << "SplitEdge: no edge " << u << "->" << v;
  edges_ = std::move(kept);
  return w;
}

RoadNetwork RoadNetworkBuilder::Build() && {
  RoadNetwork net;
  const size_t n = points_.size();
  net.points_ = std::move(points_);

  net.fwd_offsets_.assign(n + 1, 0);
  net.rev_offsets_.assign(n + 1, 0);
  for (const PendingEdge& e : edges_) {
    ++net.fwd_offsets_[e.u + 1];
    ++net.rev_offsets_[e.v + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    net.fwd_offsets_[i + 1] += net.fwd_offsets_[i];
    net.rev_offsets_[i + 1] += net.rev_offsets_[i];
  }
  net.fwd_arcs_.resize(edges_.size());
  net.rev_arcs_.resize(edges_.size());
  std::vector<uint32_t> fwd_fill(net.fwd_offsets_.begin(), net.fwd_offsets_.end() - 1);
  std::vector<uint32_t> rev_fill(net.rev_offsets_.begin(), net.rev_offsets_.end() - 1);
  for (const PendingEdge& e : edges_) {
    net.fwd_arcs_[fwd_fill[e.u]++] = {e.v, e.weight};
    net.rev_arcs_[rev_fill[e.v]++] = {e.u, e.weight};
  }
  // Sort adjacency by head id for cache-friendly scans and determinism.
  for (size_t u = 0; u < n; ++u) {
    auto fwd_begin = net.fwd_arcs_.begin() + net.fwd_offsets_[u];
    auto fwd_end = net.fwd_arcs_.begin() + net.fwd_offsets_[u + 1];
    std::sort(fwd_begin, fwd_end, [](const Arc& a, const Arc& b) {
      return a.to < b.to || (a.to == b.to && a.weight < b.weight);
    });
    auto rev_begin = net.rev_arcs_.begin() + net.rev_offsets_[u];
    auto rev_end = net.rev_arcs_.begin() + net.rev_offsets_[u + 1];
    std::sort(rev_begin, rev_end, [](const Arc& a, const Arc& b) {
      return a.to < b.to || (a.to == b.to && a.weight < b.weight);
    });
  }
  return net;
}

geo::BBox RoadNetwork::Bounds() const {
  geo::BBox box;
  for (const geo::Point& p : points_) box.Extend(p);
  return box;
}

double RoadNetwork::TotalEdgeLengthMeters() const {
  double total = 0.0;
  for (const Arc& a : fwd_arcs_) total += a.weight;
  return total;
}

uint64_t RoadNetwork::MemoryBytes() const {
  return util::VectorBytes(points_) + util::VectorBytes(fwd_offsets_) +
         util::VectorBytes(fwd_arcs_) + util::VectorBytes(rev_offsets_) +
         util::VectorBytes(rev_arcs_);
}

}  // namespace netclus::graph
