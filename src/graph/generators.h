// Synthetic city road-network generators.
//
// Substitute for the OpenStreetMap extracts used in the paper (Sec. 8.1).
// Three topology families mirror the paper's Fig. 11 study:
//  * grid/mesh      — "Atlanta": uniform Manhattan mesh, flow spread out;
//  * radial star    — "New York": arterials converging on a core, flow
//                      concentrated on few corridors;
//  * polycentric    — "Bangalore": several dense business districts joined
//                      by arterials, flow concentrated between centers.
// Plus a random planar family for robustness tests.
//
// Every generator returns a strongly connected directed network (largest
// SCC of the raw draw) with edge lengths in meters, and is fully
// deterministic given the seed.
#ifndef NETCLUS_GRAPH_GENERATORS_H_
#define NETCLUS_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/road_network.h"

namespace netclus::graph {

struct GridCityConfig {
  uint32_t rows = 60;
  uint32_t cols = 60;
  double block_m = 150.0;          ///< spacing between adjacent intersections
  double jitter_m = 25.0;          ///< positional noise on intersections
  double one_way_fraction = 0.25;  ///< fraction of streets made one-way
  double edge_drop_fraction = 0.04;  ///< random street removals (irregularity)
  uint64_t seed = 1;
};

/// Manhattan-style mesh ("Atlanta" in Fig. 11).
RoadNetwork GenerateGridCity(const GridCityConfig& config);

struct StarCityConfig {
  uint32_t num_rays = 9;          ///< arterial corridors out of the core
  uint32_t nodes_per_ray = 70;    ///< intersections along each corridor
  double ray_step_m = 170.0;      ///< spacing along a corridor
  uint32_t num_rings = 8;         ///< concentric connector ring roads
  uint32_t core_rows = 16;        ///< dense downtown mesh rows
  uint32_t core_cols = 16;
  double core_block_m = 120.0;
  double jitter_m = 15.0;
  uint64_t seed = 2;
};

/// Radial star ("New York" in Fig. 11): a dense core plus long corridors.
RoadNetwork GenerateStarCity(const StarCityConfig& config);

struct PolycentricCityConfig {
  uint32_t num_centers = 6;     ///< business districts (one is the CBD)
  uint32_t patch_rows = 22;     ///< mesh size of each district
  uint32_t patch_cols = 22;
  double block_m = 140.0;
  double city_span_m = 18000.0;  ///< diameter on which districts are placed
  double arterial_step_m = 280.0;  ///< node spacing along inter-district roads
  double jitter_m = 20.0;
  uint64_t seed = 3;
};

/// Polycentric city ("Bangalore" in Fig. 11).
RoadNetwork GeneratePolycentricCity(const PolycentricCityConfig& config);

struct RandomCityConfig {
  uint32_t num_nodes = 2000;
  double span_m = 12000.0;     ///< square side on which nodes are scattered
  uint32_t neighbors = 3;      ///< k-nearest-neighbor connectivity
  double one_way_fraction = 0.2;
  uint64_t seed = 4;
};

/// Random planar-ish network (k-NN graph on scattered points).
RoadNetwork GenerateRandomCity(const RandomCityConfig& config);

}  // namespace netclus::graph

#endif  // NETCLUS_GRAPH_GENERATORS_H_
