#include "graph/dijkstra.h"

#include <algorithm>

#include "util/logging.h"

namespace netclus::graph {

DijkstraEngine::DijkstraEngine(const RoadNetwork* net) : net_(net) {
  NC_CHECK(net != nullptr);
  dist_.resize(net->num_nodes(), kInfDistance);
  stamp_.resize(net->num_nodes(), 0);
  parent_.resize(net->num_nodes(), kInvalidNode);
}

void DijkstraEngine::NewEpoch() {
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap-around: invalidate everything once per ~4 billion searches.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  // Drain any heap leftovers from an early-exited previous search.
  while (!heap_.empty()) heap_.pop();
}

std::vector<Settled> DijkstraEngine::BoundedSearch(NodeId source, double radius,
                                                   Direction dir) {
  NC_CHECK_LT(source, net_->num_nodes());
  NewEpoch();
  std::vector<Settled> settled;
  SetDist(source, 0.0);
  heap_.push({0.0, source});
  while (!heap_.empty()) {
    const auto [d, u] = heap_.top();
    heap_.pop();
    if (d > DistOf(u)) continue;  // stale entry
    if (d > radius) break;
    settled.push_back({u, d});
    const auto arcs = dir == Direction::kForward ? net_->OutArcs(u) : net_->InArcs(u);
    for (const Arc& arc : arcs) {
      const double nd = d + arc.weight;
      if (nd <= radius && nd < DistOf(arc.to)) {
        SetDist(arc.to, nd);
        heap_.push({nd, arc.to});
      }
    }
  }
  last_settled_ = settled.size();
  return settled;
}

std::vector<double> DijkstraEngine::FullSearch(NodeId source, Direction dir) {
  NC_CHECK_LT(source, net_->num_nodes());
  NewEpoch();
  std::vector<double> out(net_->num_nodes(), kInfDistance);
  SetDist(source, 0.0);
  heap_.push({0.0, source});
  size_t settled = 0;
  while (!heap_.empty()) {
    const auto [d, u] = heap_.top();
    heap_.pop();
    if (d > DistOf(u)) continue;
    if (out[u] != kInfDistance) continue;
    out[u] = d;
    ++settled;
    const auto arcs = dir == Direction::kForward ? net_->OutArcs(u) : net_->InArcs(u);
    for (const Arc& arc : arcs) {
      const double nd = d + arc.weight;
      if (nd < DistOf(arc.to)) {
        SetDist(arc.to, nd);
        heap_.push({nd, arc.to});
      }
    }
  }
  last_settled_ = settled;
  return out;
}

double DijkstraEngine::PointToPoint(NodeId s, NodeId t, double radius) {
  NC_CHECK_LT(s, net_->num_nodes());
  NC_CHECK_LT(t, net_->num_nodes());
  if (s == t) return 0.0;
  NewEpoch();
  const double limit = radius < 0.0 ? kInfDistance : radius;
  SetDist(s, 0.0);
  heap_.push({0.0, s});
  size_t settled = 0;
  while (!heap_.empty()) {
    const auto [d, u] = heap_.top();
    heap_.pop();
    if (d > DistOf(u)) continue;
    // Target early exit: once the heap minimum reaches dist(t), no
    // remaining label can improve t (all relaxations from here add >= 0 to
    // keys >= dist(t)), so stop without settling the tie-cost frontier.
    const double target_d = DistOf(t);
    if (target_d <= d) {
      last_settled_ = settled;
      return target_d;
    }
    if (d > limit) break;
    ++settled;
    for (const Arc& arc : net_->OutArcs(u)) {
      const double nd = d + arc.weight;
      if (nd <= limit && nd < DistOf(arc.to)) {
        SetDist(arc.to, nd);
        heap_.push({nd, arc.to});
      }
    }
  }
  last_settled_ = settled;
  return kInfDistance;
}

std::vector<NodeId> DijkstraEngine::ShortestPath(NodeId s, NodeId t,
                                                 double radius) {
  NC_CHECK_LT(s, net_->num_nodes());
  NC_CHECK_LT(t, net_->num_nodes());
  if (s == t) return {s};
  NewEpoch();
  const double limit = radius < 0.0 ? kInfDistance : radius;
  SetDist(s, 0.0);
  parent_[s] = kInvalidNode;
  heap_.push({0.0, s});
  bool reached = false;
  while (!heap_.empty()) {
    const auto [d, u] = heap_.top();
    heap_.pop();
    if (d > DistOf(u)) continue;
    // Same target early exit as PointToPoint: dist(t) is final once the
    // heap minimum reaches it, and the parent chain is already in place.
    if (DistOf(t) <= d) {
      reached = true;
      break;
    }
    if (d > limit) break;
    for (const Arc& arc : net_->OutArcs(u)) {
      const double nd = d + arc.weight;
      if (nd <= limit && nd < DistOf(arc.to)) {
        SetDist(arc.to, nd);
        parent_[arc.to] = u;
        heap_.push({nd, arc.to});
      }
    }
  }
  if (!reached) return {};
  std::vector<NodeId> path;
  for (NodeId v = t; v != kInvalidNode; v = parent_[v]) {
    path.push_back(v);
    if (v == s) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<RoundTrip> DijkstraEngine::BoundedRoundTrip(NodeId source,
                                                        double radius) {
  // Any node with round trip <= radius has both legs <= radius, so two
  // bounded searches at `radius` see every qualifying node.
  const std::vector<Settled> fwd = BoundedSearch(source, radius, Direction::kForward);
  const std::vector<Settled> rev = BoundedSearch(source, radius, Direction::kReverse);

  std::vector<RoundTrip> out;
  out.reserve(std::min(fwd.size(), rev.size()));
  // Merge by node id.
  std::vector<std::pair<NodeId, double>> fwd_sorted;
  fwd_sorted.reserve(fwd.size());
  for (const Settled& s : fwd) fwd_sorted.emplace_back(s.node, s.distance);
  std::sort(fwd_sorted.begin(), fwd_sorted.end());
  std::vector<std::pair<NodeId, double>> rev_sorted;
  rev_sorted.reserve(rev.size());
  for (const Settled& s : rev) rev_sorted.emplace_back(s.node, s.distance);
  std::sort(rev_sorted.begin(), rev_sorted.end());

  size_t i = 0, j = 0;
  while (i < fwd_sorted.size() && j < rev_sorted.size()) {
    if (fwd_sorted[i].first < rev_sorted[j].first) {
      ++i;
    } else if (rev_sorted[j].first < fwd_sorted[i].first) {
      ++j;
    } else {
      const double total = fwd_sorted[i].second + rev_sorted[j].second;
      if (total <= radius) {
        out.push_back({fwd_sorted[i].first, fwd_sorted[i].second,
                       rev_sorted[j].second});
      }
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace netclus::graph
