#include "graph/graph_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/strings.h"

namespace netclus::graph {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Reads the next non-comment, non-blank line.
bool NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    const std::string trimmed = util::Trim(*line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    *line = trimmed;
    return true;
  }
  return false;
}

}  // namespace

void WriteGraph(const RoadNetwork& net, std::ostream& os) {
  os << std::setprecision(12);
  os << "netclus-graph v1\n";
  os << "nodes " << net.num_nodes() << "\n";
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    const geo::Point& p = net.position(u);
    os << p.x << " " << p.y << "\n";
  }
  os << "edges " << net.num_edges() << "\n";
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (const Arc& arc : net.OutArcs(u)) {
      os << u << " " << arc.to << " " << arc.weight << "\n";
    }
  }
}

bool ReadGraph(std::istream& is, RoadNetwork* net, std::string* error) {
  std::string line;
  if (!NextLine(is, &line) || line != "netclus-graph v1") {
    return Fail(error, "missing/unknown header");
  }
  if (!NextLine(is, &line)) return Fail(error, "missing node count");
  size_t num_nodes = 0;
  {
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag >> num_nodes) || tag != "nodes") {
      return Fail(error, "bad node count line: " + line);
    }
  }
  RoadNetworkBuilder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    if (!NextLine(is, &line)) return Fail(error, "truncated node list");
    std::istringstream ss(line);
    double x, y;
    if (!(ss >> x >> y)) return Fail(error, "bad node line: " + line);
    builder.AddNode({x, y});
  }
  if (!NextLine(is, &line)) return Fail(error, "missing edge count");
  size_t num_edges = 0;
  {
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag >> num_edges) || tag != "edges") {
      return Fail(error, "bad edge count line: " + line);
    }
  }
  for (size_t i = 0; i < num_edges; ++i) {
    if (!NextLine(is, &line)) return Fail(error, "truncated edge list");
    std::istringstream ss(line);
    uint64_t u, v;
    double w;
    if (!(ss >> u >> v >> w)) return Fail(error, "bad edge line: " + line);
    if (u >= num_nodes || v >= num_nodes) {
      return Fail(error, "edge endpoint out of range: " + line);
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  *net = std::move(builder).Build();
  return true;
}

bool SaveGraph(const RoadNetwork& net, const std::string& path,
               std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open for write: " + path);
  WriteGraph(net, out);
  return static_cast<bool>(out);
}

bool LoadGraph(const std::string& path, RoadNetwork* net, std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open for read: " + path);
  return ReadGraph(in, net, error);
}

}  // namespace netclus::graph
