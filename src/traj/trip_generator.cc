#include "traj/trip_generator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "geo/spatial_grid.h"
#include "graph/dijkstra.h"
#include "util/logging.h"
#include "util/rng.h"

namespace netclus::traj {

namespace {

using graph::Arc;
using graph::NodeId;
using graph::RoadNetwork;

// Deterministic multiplier in [1, 1+deviation] for (trip, tail, arc index).
double ArcMultiplier(uint64_t trip_seed, NodeId tail, uint32_t arc_index,
                     double deviation) {
  const uint64_t h = util::SplitMix64(
      trip_seed ^ (static_cast<uint64_t>(tail) << 20) ^ arc_index);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 + deviation * u;
}

}  // namespace

std::vector<NodeId> RoutePerturbed(const RoadNetwork& net, NodeId src,
                                   NodeId dst, double deviation,
                                   uint64_t trip_seed) {
  NC_CHECK_LT(src, net.num_nodes());
  NC_CHECK_LT(dst, net.num_nodes());
  if (src == dst) return {src};
  // Dedicated Dijkstra with jittered weights; DijkstraEngine is not reused
  // because the weight function differs per trip.
  const size_t n = net.num_nodes();
  std::vector<double> dist(n, graph::kInfDistance);
  std::vector<NodeId> parent(n, graph::kInvalidNode);
  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    const auto arcs = net.OutArcs(u);
    for (uint32_t i = 0; i < arcs.size(); ++i) {
      const Arc& arc = arcs[i];
      const double nd =
          d + arc.weight * ArcMultiplier(trip_seed, u, i, deviation);
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        parent[arc.to] = u;
        heap.push({nd, arc.to});
      }
    }
  }
  if (dist[dst] == graph::kInfDistance) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != graph::kInvalidNode; v = parent[v]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<TrajId> GenerateTrips(const TripGeneratorConfig& config,
                                  TrajectoryStore* store) {
  NC_CHECK(store != nullptr);
  const RoadNetwork& net = store->network();
  NC_CHECK_GT(net.num_nodes(), 0u);
  util::Rng rng(config.seed);

  // Hotspots: nodes sampled uniformly; attraction weights ~ Zipf-ish.
  std::vector<NodeId> hotspot_nodes;
  std::vector<double> hotspot_weights;
  for (uint32_t i = 0; i < config.num_hotspots; ++i) {
    hotspot_nodes.push_back(
        static_cast<NodeId>(rng.UniformInt(static_cast<uint64_t>(net.num_nodes()))));
    hotspot_weights.push_back(1.0 / (1.0 + i));  // rank-1/i attraction
  }

  // Grid over node positions to sample "near hotspot" endpoints.
  geo::PointGrid grid(500.0);
  grid.Build(net.positions());

  auto sample_endpoint = [&]() -> NodeId {
    if (config.num_hotspots == 0 || rng.Bernoulli(config.background_fraction)) {
      return static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(net.num_nodes())));
    }
    const size_t h = rng.Categorical(hotspot_weights);
    const geo::Point base = net.position(hotspot_nodes[h]);
    const geo::Point jittered{base.x + rng.Normal(0.0, config.hotspot_sigma_m),
                              base.y + rng.Normal(0.0, config.hotspot_sigma_m)};
    const uint32_t nearest = grid.Nearest(jittered);
    return nearest == geo::PointGrid::kNotFound
               ? hotspot_nodes[h]
               : static_cast<NodeId>(nearest);
  };

  std::vector<TrajId> ids;
  ids.reserve(config.num_trajectories);
  uint32_t attempts = 0;
  const uint32_t max_attempts = config.num_trajectories * 40 + 1000;
  while (ids.size() < config.num_trajectories && attempts < max_attempts) {
    ++attempts;
    const NodeId src = sample_endpoint();
    const NodeId dst = sample_endpoint();
    if (src == dst) continue;
    if (geo::Distance(net.position(src), net.position(dst)) <
        config.min_od_distance_m) {
      continue;
    }
    const uint64_t trip_seed = util::SplitMix64(config.seed ^ (attempts * 0x9e37ULL));
    std::vector<NodeId> path =
        RoutePerturbed(net, src, dst, config.deviation, trip_seed);
    if (path.size() < 2) continue;
    if (config.max_length_m > 0.0) {
      // Cheap length check before committing to the store.
      double len = 0.0;
      for (size_t i = 1; i < path.size(); ++i) {
        len += net.EuclideanMeters(path[i - 1], path[i]);
      }
      if (len < config.min_length_m || len > config.max_length_m) continue;
    }
    ids.push_back(store->Add(std::move(path)));
  }
  if (ids.size() < config.num_trajectories) {
    NC_LOG_WARNING << "GenerateTrips: produced " << ids.size() << " of "
                   << config.num_trajectories
                   << " requested trajectories (length filter too strict?)";
  }
  return ids;
}

}  // namespace netclus::traj
