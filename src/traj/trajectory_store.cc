#include "traj/trajectory_store.h"

#include "util/logging.h"
#include "util/memory.h"

namespace netclus::traj {

TrajectoryStore::TrajectoryStore(const graph::RoadNetwork* net) : net_(net) {
  NC_CHECK(net != nullptr);
  node_postings_.resize(net->num_nodes());
}

TrajectoryStore::TrajectoryStore(const TrajectoryStore& other,
                                 const graph::RoadNetwork* net)
    : TrajectoryStore(other) {  // delegate: one copy site for all members
  NC_CHECK(net != nullptr);
  NC_CHECK_EQ(net->num_nodes(), other.net_->num_nodes());
  net_ = net;
}

TrajId TrajectoryStore::Add(std::vector<graph::NodeId> nodes) {
  NC_CHECK(!nodes.empty());
  const TrajId id = static_cast<TrajId>(trajectories_.size());
  trajectories_.emplace_back(*net_, std::move(nodes));
  alive_.push_back(true);
  ++live_count_;
  IndexTrajectory(id);
  return id;
}

void TrajectoryStore::Remove(TrajId id) {
  if (id >= trajectories_.size()) {
    NC_LOG_WARNING << "Remove(" << id << "): unknown trajectory id (corpus has "
                   << trajectories_.size() << " ids); ignored";
    return;
  }
  if (!alive_[id]) return;
  alive_[id] = false;
  --live_count_;
}

std::span<const Posting> TrajectoryStore::postings(graph::NodeId node) const {
  NC_CHECK_LT(node, node_postings_.size());
  const auto& v = node_postings_[node];
  return {v.data(), v.size()};
}

void TrajectoryStore::IndexTrajectory(TrajId id) {
  const Trajectory& t = trajectories_[id];
  for (uint32_t pos = 0; pos < t.size(); ++pos) {
    node_postings_[t.node(pos)].push_back({id, pos});
  }
}

double TrajectoryStore::MeanNodeCount() const {
  if (live_count_ == 0) return 0.0;
  double total = 0.0;
  for (TrajId id = 0; id < trajectories_.size(); ++id) {
    if (alive_[id]) total += static_cast<double>(trajectories_[id].size());
  }
  return total / static_cast<double>(live_count_);
}

double TrajectoryStore::MeanLengthMeters() const {
  if (live_count_ == 0) return 0.0;
  double total = 0.0;
  for (TrajId id = 0; id < trajectories_.size(); ++id) {
    if (alive_[id]) total += trajectories_[id].LengthMeters();
  }
  return total / static_cast<double>(live_count_);
}

uint64_t TrajectoryStore::MemoryBytes() const {
  uint64_t total = util::NestedVectorBytes(node_postings_);
  for (const Trajectory& t : trajectories_) total += t.MemoryBytes();
  total += alive_.capacity() / 8;
  return total;
}

void TrajectoryStore::Compact() {
  for (auto& postings : node_postings_) {
    size_t w = 0;
    for (const Posting& p : postings) {
      if (alive_[p.traj]) postings[w++] = p;
    }
    postings.resize(w);
    postings.shrink_to_fit();
  }
}

}  // namespace netclus::traj
