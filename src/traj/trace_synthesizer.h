// Synthesizes noisy GPS traces from ground-truth routes.
//
// Substitutes for real GPS recordings: a route (node sequence) is driven at
// a constant speed and sampled every `sampling_interval_s` with Gaussian
// position noise, producing the raw input the map-matcher consumes. Tests
// verify the matcher recovers the ground-truth route.
#ifndef NETCLUS_TRAJ_TRACE_SYNTHESIZER_H_
#define NETCLUS_TRAJ_TRACE_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "traj/trace.h"

namespace netclus::traj {

struct TraceSynthesizerConfig {
  double speed_mps = 11.0;             ///< ~40 km/h urban driving
  double sampling_interval_s = 15.0;   ///< typical taxi probe rate
  double noise_sigma_m = 18.0;         ///< GPS error standard deviation
  uint64_t seed = 11;
};

/// Samples a GPS trace along the route `nodes` (which must be a connected
/// node path in `net`; gaps are interpolated with straight lines).
GpsTrace SynthesizeTrace(const graph::RoadNetwork& net,
                         const std::vector<graph::NodeId>& nodes,
                         const TraceSynthesizerConfig& config);

}  // namespace netclus::traj

#endif  // NETCLUS_TRAJ_TRACE_SYNTHESIZER_H_
