// HMM map-matcher: raw GPS trace -> road-network node sequence.
//
// Follows the structure of Lou et al. [33] / Newson-Krumm:
//  * candidate states per sample: network nodes within a search radius;
//  * emission probability: Gaussian in the snap distance;
//  * transition probability: exponential in |route distance - great-circle
//    distance| between consecutive samples (route distance via bounded
//    point-to-point Dijkstra);
//  * Viterbi decoding, then route expansion with shortest paths so that the
//    output is a contiguous node path as the paper's Sec. 2 requires.
//
// Candidates are intersections rather than edge projections; at city block
// scale (~100-200 m) with typical probe noise this recovers routes reliably
// (see tests) while keeping the matcher a light substrate.
#ifndef NETCLUS_TRAJ_MAP_MATCHER_H_
#define NETCLUS_TRAJ_MAP_MATCHER_H_

#include <cstdint>
#include <vector>

#include <memory>

#include "geo/spatial_grid.h"
#include "graph/road_network.h"
#include "graph/spf/distance_backend.h"
#include "traj/trace.h"

namespace netclus::traj {

struct MapMatcherConfig {
  double candidate_radius_m = 120.0;  ///< candidate node search radius
  size_t max_candidates = 6;          ///< per GPS sample
  double emission_sigma_m = 30.0;     ///< GPS noise model
  double transition_beta_m = 250.0;   ///< route-vs-line tolerance
  /// Cap on the route search between consecutive samples, as a multiple of
  /// their straight-line distance (plus a constant slack).
  double route_slack_factor = 4.0;
  double route_slack_const_m = 600.0;
};

struct MatchResult {
  std::vector<graph::NodeId> path;  ///< contiguous node path (empty = failed)
  double log_likelihood = 0.0;
  size_t dropped_samples = 0;  ///< samples with no candidates in radius
};

class MapMatcher {
 public:
  /// `backend` (optional, not owned, must outlive the matcher) selects the
  /// shortest-path implementation for transition probabilities and route
  /// expansion; null = plain Dijkstra. Point-to-point-heavy, so the
  /// bidirectional and CH backends speed matching up directly.
  explicit MapMatcher(const graph::RoadNetwork* net,
                      const MapMatcherConfig& config = {},
                      const graph::spf::DistanceBackend* backend = nullptr);

  /// Matches one trace. Thread-compatible (not thread-safe: reuses a
  /// shortest-path workspace).
  MatchResult Match(const GpsTrace& trace);

 private:
  std::vector<uint32_t> CandidatesFor(const geo::Point& p);

  const graph::RoadNetwork* net_;
  MapMatcherConfig config_;
  geo::PointGrid node_grid_;
  std::unique_ptr<graph::spf::DistanceQuery> spf_;
};

}  // namespace netclus::traj

#endif  // NETCLUS_TRAJ_MAP_MATCHER_H_
