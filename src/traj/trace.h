// Raw GPS trace types (the input end of the paper's Fig. 2 pipeline).
#ifndef NETCLUS_TRAJ_TRACE_H_
#define NETCLUS_TRAJ_TRACE_H_

#include <vector>

#include "geo/point.h"

namespace netclus::traj {

/// One GPS fix in the local planar frame.
struct GpsSample {
  geo::Point position;
  double timestamp_s = 0.0;
};

/// A raw GPS trace: noisy, irregularly sampled positions of one vehicle.
using GpsTrace = std::vector<GpsSample>;

}  // namespace netclus::traj

#endif  // NETCLUS_TRAJ_TRACE_H_
