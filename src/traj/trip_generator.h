// Gravity-model trip generator: the stand-in for the Beijing taxi corpus
// and for MNTG synthetic traffic (Sec. 8.1).
//
// Trips are drawn between hotspot zones (homes, offices, transit hubs)
// whose attractiveness follows a heavy-tailed distribution, and routed with
// per-trip randomly perturbed edge weights. The perturbation is the key
// realism ingredient: the paper explicitly criticizes prior work for
// assuming users drive exact shortest paths, so routes here deviate from
// the shortest path by a controllable factor while remaining plausible.
#ifndef NETCLUS_TRAJ_TRIP_GENERATOR_H_
#define NETCLUS_TRAJ_TRIP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "traj/trajectory_store.h"

namespace netclus::traj {

struct TripGeneratorConfig {
  uint32_t num_trajectories = 10000;
  uint32_t num_hotspots = 12;      ///< OD attraction zones
  double hotspot_sigma_m = 900.0;  ///< spatial spread of a zone
  double background_fraction = 0.2;  ///< trips with uniform (non-hotspot) ends
  /// Per-trip edge-weight perturbation: each arc's cost is multiplied by a
  /// factor in [1, 1 + deviation] drawn per (trip, arc). 0 = exact shortest
  /// paths.
  double deviation = 0.35;
  /// Reject trips whose straight-line OD distance is below this (meters).
  double min_od_distance_m = 1500.0;
  /// Optional along-path length filter (meters); 0 disables.
  double min_length_m = 0.0;
  double max_length_m = 0.0;
  uint64_t seed = 7;
};

/// Generates trajectories into `store`. Returns the ids added.
std::vector<TrajId> GenerateTrips(const TripGeneratorConfig& config,
                                  TrajectoryStore* store);

/// Routes one trip from `src` to `dst` with per-trip perturbed weights.
/// Exposed for tests and for the trace synthesizer. Empty if unreachable.
std::vector<graph::NodeId> RoutePerturbed(const graph::RoadNetwork& net,
                                          graph::NodeId src, graph::NodeId dst,
                                          double deviation, uint64_t trip_seed);

}  // namespace netclus::traj

#endif  // NETCLUS_TRAJ_TRIP_GENERATOR_H_
