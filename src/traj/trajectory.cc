#include "traj/trajectory.h"

#include "graph/dijkstra.h"
#include "util/logging.h"

namespace netclus::traj {

namespace {

// Weight of the cheapest arc u -> v, or a fallback when not adjacent.
double StepDistance(const graph::RoadNetwork& net, graph::NodeId u,
                    graph::NodeId v) {
  double best = graph::kInfDistance;
  for (const graph::Arc& arc : net.OutArcs(u)) {
    if (arc.to == v && arc.weight < best) best = arc.weight;
  }
  if (best != graph::kInfDistance) return best;
  // Non-adjacent consecutive nodes: approximate with straight-line distance.
  return net.EuclideanMeters(u, v);
}

}  // namespace

Trajectory::Trajectory(const graph::RoadNetwork& net,
                       std::vector<graph::NodeId> nodes)
    : nodes_(std::move(nodes)) {
  prefix_.reserve(nodes_.size());
  double acc = 0.0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NC_CHECK_LT(nodes_[i], net.num_nodes());
    if (i > 0) acc += StepDistance(net, nodes_[i - 1], nodes_[i]);
    prefix_.push_back(acc);
  }
}

}  // namespace netclus::traj
