// Trajectory corpus with a node -> trajectories inverted index.
//
// The inverted index is what makes covering-set computation practical: a
// site's bounded round-trip search enumerates nearby nodes, and the index
// maps those to the trajectories passing through them (Sec. 3.2). Supports
// dynamic additions and deletions (Sec. 6) via tombstones; deleted ids are
// skipped on read.
#ifndef NETCLUS_TRAJ_TRAJECTORY_STORE_H_
#define NETCLUS_TRAJ_TRAJECTORY_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "traj/trajectory.h"

namespace netclus::traj {

/// One posting: trajectory `traj` passes through the indexed node at
/// position `pos` in its node sequence.
struct Posting {
  TrajId traj;
  uint32_t pos;
};

class TrajectoryStore {
 public:
  explicit TrajectoryStore(const graph::RoadNetwork* net);

  /// Copy that rebinds the network reference: identical corpus, postings,
  /// and tombstones, but reading from `net` (which must be structurally
  /// identical to other's network — e.g. a copy of it). The serving layer
  /// uses this to make snapshots self-contained: a snapshot owns its own
  /// network copy and its store must point at that copy, not at the
  /// originating Engine's.
  TrajectoryStore(const TrajectoryStore& other, const graph::RoadNetwork* net);

  /// Adds a trajectory (by node sequence); returns its id. O(len).
  TrajId Add(std::vector<graph::NodeId> nodes);

  /// Marks a trajectory deleted. Its postings are skipped lazily. O(1).
  /// An unknown id is a logged no-op; an already-removed id is a silent
  /// no-op — update streams (src/serve) may legitimately replay deletes.
  void Remove(TrajId id);

  bool is_alive(TrajId id) const { return alive_[id]; }

  /// Number of live trajectories.
  size_t live_count() const { return live_count_; }

  /// Total ids ever allocated (live + deleted).
  size_t total_count() const { return trajectories_.size(); }

  const Trajectory& trajectory(TrajId id) const { return trajectories_[id]; }

  /// Postings for a node (may include deleted trajectories; check
  /// is_alive). Spans remain valid until the next Add() call.
  std::span<const Posting> postings(graph::NodeId node) const;

  const graph::RoadNetwork& network() const { return *net_; }

  /// Mean node count over live trajectories.
  double MeanNodeCount() const;

  /// Mean along-path length (meters) over live trajectories.
  double MeanLengthMeters() const;

  /// Analytic memory footprint in bytes.
  uint64_t MemoryBytes() const;

  /// Rebuilds the inverted index compactly, dropping tombstoned postings.
  /// Ids are preserved. Call after large batches of deletions.
  void Compact();

 private:
  void IndexTrajectory(TrajId id);

  const graph::RoadNetwork* net_;
  std::vector<Trajectory> trajectories_;
  std::vector<bool> alive_;
  size_t live_count_ = 0;

  // Inverted index as per-node vectors. A CSR layout would be ~25% smaller
  // but would make dynamic adds O(total postings); per-node vectors keep
  // adds O(len) which Table 10 (update cost) depends on.
  std::vector<std::vector<Posting>> node_postings_;
};

}  // namespace netclus::traj

#endif  // NETCLUS_TRAJ_TRAJECTORY_STORE_H_
