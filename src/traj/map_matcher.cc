#include "traj/map_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace netclus::traj {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

MapMatcher::MapMatcher(const graph::RoadNetwork* net,
                       const MapMatcherConfig& config,
                       const graph::spf::DistanceBackend* backend)
    : net_(net), config_(config), node_grid_(config.candidate_radius_m),
      spf_(graph::spf::MakeQueryOrDijkstra(backend, net)) {
  NC_CHECK(net != nullptr);
  node_grid_.Build(net->positions());
}

std::vector<uint32_t> MapMatcher::CandidatesFor(const geo::Point& p) {
  auto scored = node_grid_.QueryRadiusWithDistance(p, config_.candidate_radius_m);
  std::sort(scored.begin(), scored.end());
  if (scored.size() > config_.max_candidates) {
    scored.resize(config_.max_candidates);
  }
  std::vector<uint32_t> out;
  out.reserve(scored.size());
  for (const auto& [dist, id] : scored) out.push_back(id);
  return out;
}

MatchResult MapMatcher::Match(const GpsTrace& trace) {
  MatchResult result;
  if (trace.empty()) return result;

  // Collect candidate sets, dropping samples with no nearby intersection.
  struct Layer {
    geo::Point sample;
    std::vector<uint32_t> candidates;
  };
  std::vector<Layer> layers;
  layers.reserve(trace.size());
  for (const GpsSample& s : trace) {
    std::vector<uint32_t> cands = CandidatesFor(s.position);
    if (cands.empty()) {
      ++result.dropped_samples;
      continue;
    }
    layers.push_back({s.position, std::move(cands)});
  }
  if (layers.empty()) return result;

  const double emission_denom =
      2.0 * config_.emission_sigma_m * config_.emission_sigma_m;
  auto emission_logp = [&](const geo::Point& sample, uint32_t node) {
    const double d = geo::Distance(sample, net_->position(node));
    return -(d * d) / emission_denom;
  };

  // Viterbi forward pass.
  std::vector<std::vector<double>> score(layers.size());
  std::vector<std::vector<int>> backptr(layers.size());
  score[0].resize(layers[0].candidates.size());
  backptr[0].assign(layers[0].candidates.size(), -1);
  for (size_t c = 0; c < layers[0].candidates.size(); ++c) {
    score[0][c] = emission_logp(layers[0].sample, layers[0].candidates[c]);
  }
  for (size_t i = 1; i < layers.size(); ++i) {
    const Layer& prev = layers[i - 1];
    const Layer& cur = layers[i];
    const double line_d = geo::Distance(prev.sample, cur.sample);
    const double route_cap =
        config_.route_slack_factor * line_d + config_.route_slack_const_m;
    score[i].assign(cur.candidates.size(), kNegInf);
    backptr[i].assign(cur.candidates.size(), -1);
    for (size_t b = 0; b < cur.candidates.size(); ++b) {
      const uint32_t nb = cur.candidates[b];
      double best = kNegInf;
      int best_a = -1;
      for (size_t a = 0; a < prev.candidates.size(); ++a) {
        if (score[i - 1][a] == kNegInf) continue;
        const uint32_t na = prev.candidates[a];
        const double route_d = spf_->PointToPoint(na, nb, route_cap);
        if (route_d == graph::kInfDistance) continue;
        const double transition_logp =
            -std::abs(route_d - line_d) / config_.transition_beta_m;
        const double s = score[i - 1][a] + transition_logp;
        if (s > best) {
          best = s;
          best_a = static_cast<int>(a);
        }
      }
      if (best_a >= 0) {
        score[i][b] = best + emission_logp(cur.sample, nb);
        backptr[i][b] = best_a;
      }
    }
    // If every candidate is unreachable (HMM "break"), restart the chain at
    // this layer rather than failing the whole trace.
    bool all_dead = true;
    for (double s : score[i]) {
      if (s != kNegInf) {
        all_dead = false;
        break;
      }
    }
    if (all_dead) {
      for (size_t b = 0; b < cur.candidates.size(); ++b) {
        score[i][b] = emission_logp(cur.sample, cur.candidates[b]);
        backptr[i][b] = -1;
      }
    }
  }

  // Backtrack from the best final state.
  std::vector<uint32_t> matched(layers.size());
  {
    size_t i = layers.size() - 1;
    int c = static_cast<int>(
        std::max_element(score[i].begin(), score[i].end()) - score[i].begin());
    result.log_likelihood = score[i][c];
    while (true) {
      matched[i] = layers[i].candidates[c];
      const int prev_c = backptr[i][c];
      if (i == 0) break;
      if (prev_c < 0) {
        // Chain restart: greedily pick the best state of the previous layer.
        size_t j = i - 1;
        c = static_cast<int>(std::max_element(score[j].begin(), score[j].end()) -
                             score[j].begin());
      } else {
        c = prev_c;
      }
      --i;
    }
  }

  // Route expansion: stitch consecutive matched nodes with shortest paths
  // so the output is a contiguous intersection sequence.
  std::vector<graph::NodeId> path;
  path.push_back(matched[0]);
  for (size_t i = 1; i < matched.size(); ++i) {
    if (matched[i] == path.back()) continue;
    const double line_d =
        geo::Distance(layers[i - 1].sample, layers[i].sample);
    const double cap =
        config_.route_slack_factor * line_d + config_.route_slack_const_m;
    std::vector<graph::NodeId> leg =
        spf_->ShortestPath(path.back(), matched[i], cap);
    if (leg.empty()) {
      leg = spf_->ShortestPath(path.back(), matched[i]);
    }
    if (leg.empty()) {
      // Disconnected (shouldn't happen on SCC-restricted networks): jump.
      path.push_back(matched[i]);
      continue;
    }
    path.insert(path.end(), leg.begin() + 1, leg.end());
  }
  result.path = std::move(path);
  return result;
}

}  // namespace netclus::traj
