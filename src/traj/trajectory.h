// Trajectory type: a map-matched sequence of road-network nodes.
//
// Matches the paper's Sec. 2: "each trajectory is map-matched to form a
// sequence of road intersections through which it passes". Consecutive
// nodes are expected to be adjacent in the network; prefix distances cache
// the along-path distance from the first node to each node, which makes the
// pairwise detour distance d_r(T, s) O(1) per (leave, rejoin) pair.
#ifndef NETCLUS_TRAJ_TRAJECTORY_H_
#define NETCLUS_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/road_network.h"

namespace netclus::traj {

using TrajId = uint32_t;
inline constexpr TrajId kInvalidTraj = std::numeric_limits<TrajId>::max();

class Trajectory {
 public:
  Trajectory() = default;

  /// Builds from a node sequence; prefix distances are derived from the
  /// network's arc weights (falling back to Euclidean distance when two
  /// consecutive nodes are not adjacent, which can happen for sparse
  /// map-matched input).
  Trajectory(const graph::RoadNetwork& net, std::vector<graph::NodeId> nodes);

  const std::vector<graph::NodeId>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  graph::NodeId node(size_t i) const { return nodes_[i]; }

  /// Along-path distance from node 0 to node i, meters.
  double prefix(size_t i) const { return prefix_[i]; }

  /// Along-path distance between positions i <= j on the trajectory.
  double AlongDistance(size_t i, size_t j) const {
    return prefix_[j] - prefix_[i];
  }

  /// Total along-path length, meters.
  double LengthMeters() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

  /// Analytic memory footprint in bytes.
  uint64_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(graph::NodeId) +
           prefix_.capacity() * sizeof(double);
  }

 private:
  std::vector<graph::NodeId> nodes_;
  std::vector<double> prefix_;
};

}  // namespace netclus::traj

#endif  // NETCLUS_TRAJ_TRAJECTORY_H_
