#include "traj/trace_synthesizer.h"

#include "geo/polyline.h"
#include "util/logging.h"
#include "util/rng.h"

namespace netclus::traj {

GpsTrace SynthesizeTrace(const graph::RoadNetwork& net,
                         const std::vector<graph::NodeId>& nodes,
                         const TraceSynthesizerConfig& config) {
  NC_CHECK_GT(config.speed_mps, 0.0);
  NC_CHECK_GT(config.sampling_interval_s, 0.0);
  GpsTrace trace;
  if (nodes.empty()) return trace;

  std::vector<geo::Point> polyline;
  polyline.reserve(nodes.size());
  for (graph::NodeId n : nodes) polyline.push_back(net.position(n));
  const double length = geo::PolylineLength(polyline);

  util::Rng rng(config.seed);
  const double step_m = config.speed_mps * config.sampling_interval_s;
  double s = 0.0;
  double t = 0.0;
  while (true) {
    const geo::Point exact = geo::InterpolateAlong(polyline, s);
    trace.push_back({{exact.x + rng.Normal(0.0, config.noise_sigma_m),
                      exact.y + rng.Normal(0.0, config.noise_sigma_m)},
                     t});
    if (s >= length) break;
    s = std::min(length, s + step_m);
    t += config.sampling_interval_s;
  }
  return trace;
}

}  // namespace netclus::traj
