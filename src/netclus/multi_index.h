// The multi-resolution NETCLUS index (Sec. 4.4).
//
// Maintains t = ⌊log_{1+γ}(τ_max / τ_min)⌋ + 1 instances with radii
// R_p = (1+γ)^p R_0, R_0 = τ_min / 4. Instance I_p serves coverage
// thresholds τ ∈ [4 R_p, 4 R_p (1+γ)): below 4 R_p coverage of same-cluster
// trajectories is not guaranteed, above 4 R_p (1+γ) a coarser instance
// processes fewer clusters. τ_min / τ_max default to the (sampled) min /
// max round-trip distance between candidate sites, exactly as Sec. 4.4
// prescribes; queries outside the range clamp to the extreme instances.
//
// Dynamic updates (Sec. 6) are applied to every instance.
#ifndef NETCLUS_NETCLUS_MULTI_INDEX_H_
#define NETCLUS_NETCLUS_MULTI_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/spf/distance_backend.h"
#include "netclus/cluster_index.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"

namespace netclus::index {

struct MultiIndexConfig {
  double gamma = 0.75;
  /// Explicit τ range; 0 means "estimate from the data" (Sec. 4.4: min/max
  /// site-pair round-trip distance, sampled for tractability).
  double tau_min_m = 0.0;
  double tau_max_m = 0.0;
  uint32_t max_instances = 16;  ///< safety cap on t
  GdspStrategy gdsp_strategy = GdspStrategy::kLazyExact;
  uint32_t fm_copies = 30;
  RepresentativeRule representative_rule = RepresentativeRule::kClosestToCenter;
  uint64_t seed = 99;  ///< for τ range sampling
  /// Worker threads for the offline build (0 = NETCLUS_THREADS default).
  /// With at least as many instances as threads, instances build
  /// concurrently (one per worker); with fewer, instances build one after
  /// another with the per-cluster loops fanned across all threads. Every
  /// instance build is deterministic, so the index is identical at any
  /// thread count. Runtime-only: not serialized.
  uint32_t threads = 0;
};

class MultiIndex {
 public:
  /// Offline build (Sec. 4): clusters every instance and indexes all live
  /// trajectories and sites. `backend` (optional, not owned, build-time
  /// only) accelerates every distance computation of the build — τ-range
  /// estimation, GDSP domination, neighbor lists; null = plain Dijkstra.
  /// The index is bit-identical under every backend.
  static MultiIndex Build(const traj::TrajectoryStore& store,
                          const tops::SiteSet& sites,
                          const MultiIndexConfig& config,
                          const graph::spf::DistanceBackend* backend = nullptr);

  /// Deep copy of the whole index (every instance). This is the
  /// copy-on-write primitive behind snapshot isolation in src/serve: the
  /// update pipeline clones the published index, applies a batch of Sec. 6
  /// incremental updates to the clone, and publishes it as the next
  /// immutable snapshot. O(index size).
  MultiIndex Clone() const;

  size_t num_instances() const { return instances_.size(); }
  const ClusterIndex& instance(size_t p) const { return *instances_[p]; }

  /// Instance index p = ⌊log_{1+γ}(τ / τ_min)⌋, clamped to [0, t).
  size_t InstanceFor(double tau_m) const;

  double tau_min_m() const { return tau_min_; }
  double tau_max_m() const { return tau_max_; }
  double gamma() const { return config_.gamma; }
  const MultiIndexConfig& config() const { return config_; }

  double build_seconds() const { return build_seconds_; }

  /// Analytic memory footprint across all instances, bytes (Table 7).
  uint64_t MemoryBytes() const;

  /// Actual bytes behind all posting storage (TL + CC arenas + dynamic
  /// overlays), and what the same postings would cost as plain vectors —
  /// the raw-vs-compressed pair Table 9 reports.
  uint64_t PostingsBytesCompressed() const;
  uint64_t PostingsBytesRaw() const;

  // --- dynamic updates (Sec. 6), fanned out to every instance -------------

  void AddTrajectory(const traj::TrajectoryStore& store, traj::TrajId t);
  /// Unindexes trajectory `t` from every instance. An id the index has
  /// never seen, or one already removed, is a safe no-op (each instance
  /// has no stored cluster sequence for it, so there is nothing to undo).
  void RemoveTrajectory(traj::TrajId t);
  void AddSite(const traj::TrajectoryStore& store, const tops::SiteSet& sites,
               tops::SiteId s);
  void RemoveSite(const traj::TrajectoryStore& store,
                  const tops::SiteSet& sites, tops::SiteId s);

  /// Estimates the [τ_min, τ_max] range from site-pair round trips by
  /// sampling (exposed for tests and benches).
  static void EstimateTauRange(
      const traj::TrajectoryStore& store, const tops::SiteSet& sites,
      uint64_t seed, double* tau_min_m, double* tau_max_m,
      const graph::spf::DistanceBackend* backend = nullptr);

 private:
  friend void WriteIndex(const MultiIndex& index,
                         const graph::spf::DistanceBackend* backend,
                         std::ostream& os);
  friend bool ReadIndex(std::istream& is, size_t expected_nodes,
                        size_t expected_trajectories, MultiIndex* index,
                        std::string* error, const graph::RoadNetwork* net,
                        std::shared_ptr<const graph::spf::DistanceBackend>*
                            backend);
  friend bool ReadIndexV2(store::ByteBlock block, size_t expected_nodes,
                          size_t expected_trajectories, MultiIndex* index,
                          std::string* error, const graph::RoadNetwork* net,
                          std::shared_ptr<const graph::spf::DistanceBackend>*
                              backend);
  MultiIndexConfig config_;
  double tau_min_ = 0.0;
  double tau_max_ = 0.0;
  double build_seconds_ = 0.0;
  std::vector<std::unique_ptr<ClusterIndex>> instances_;
};

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_MULTI_INDEX_H_
