#include "netclus/cluster_index.h"

#include <algorithm>

#include "graph/dijkstra.h"
#include "util/float_bits.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::index {

namespace {

using graph::NodeId;
using tops::SiteId;
using traj::TrajId;

// Per-trajectory TL/CC contribution, computed independently (and so safely
// in parallel) and committed in trajectory order.
struct TrajContribution {
  std::vector<uint32_t> seq;                      // CC(T)
  std::vector<std::pair<uint32_t, float>> best;   // (cluster, min d_r)
  size_t raw_postings = 0;
};

TrajContribution ComputeContribution(const traj::Trajectory& trajectory,
                                     const std::vector<uint32_t>& node_cluster,
                                     const std::vector<float>& node_rt) {
  TrajContribution out;
  out.raw_postings = trajectory.size();
  // One TL entry per distinct visited cluster, with the min round trip from
  // any member node of the trajectory inside that cluster.
  // Use a local (cluster -> best) map; trajectories touch few clusters.
  for (size_t i = 0; i < trajectory.size(); ++i) {
    const NodeId v = trajectory.node(i);
    const uint32_t g = node_cluster[v];
    const float rt = node_rt[v];
    if (out.seq.empty() || out.seq.back() != g) out.seq.push_back(g);
    bool found = false;
    for (auto& [bg, bd] : out.best) {
      if (bg == g) {
        bd = std::min(bd, rt);
        found = true;
        break;
      }
    }
    if (!found) out.best.emplace_back(g, rt);
  }
  return out;
}

}  // namespace

ClusterIndex ClusterIndex::Build(const traj::TrajectoryStore& store,
                                 const tops::SiteSet& sites,
                                 const ClusterIndexConfig& config,
                                 const graph::spf::DistanceBackend* backend) {
  util::WallTimer timer;
  ClusterIndex index;
  index.config_ = config;
  const graph::RoadNetwork& net = store.network();

  // 1. GDSP clustering at radius R.
  GdspConfig gdsp_config;
  gdsp_config.radius_m = config.radius_m;
  gdsp_config.strategy = config.gdsp_strategy;
  gdsp_config.fm_copies = config.fm_copies;
  GdspResult gdsp = GreedyGdsp(net, gdsp_config, backend);
  index.stats_.gdsp_seconds = gdsp.build_seconds;
  index.stats_.mean_dominating_set_size = gdsp.mean_dominating_set_size;

  index.clusters_.resize(gdsp.centers.size());
  for (uint32_t g = 0; g < gdsp.centers.size(); ++g) {
    index.clusters_[g].center = gdsp.centers[g];
  }
  index.node_cluster_ = std::move(gdsp.assignment);
  index.node_rt_ = std::move(gdsp.rt_to_center);

  const unsigned threads = util::ResolveThreads(config.threads);

  // 2. Site membership and representatives. Election per cluster touches
  // only that cluster's record, so clusters run in parallel.
  index.site_removed_.assign(sites.size(), false);
  for (SiteId s = 0; s < sites.size(); ++s) {
    index.clusters_[index.node_cluster_[sites.node(s)]].sites.push_back(s);
  }
  util::ParallelFor(threads, index.clusters_.size(),
                    [&](size_t begin, size_t end) {
                      for (size_t g = begin; g < end; ++g) {
                        index.ElectRepresentative(store, sites,
                                                  static_cast<uint32_t>(g),
                                                  nullptr);
                      }
                    });

  // 3. Trajectory lists TL and compressed cluster sequences CC. The
  // per-trajectory contributions are independent; the TL appends scatter
  // across clusters and are committed sequentially in trajectory order, so
  // the lists are identical to a serial build. Contributions are produced
  // and committed in fixed windows so the transient footprint stays bounded
  // instead of holding a private copy of every trajectory's lists at once.
  // Lists accumulate in plain vectors and are frozen into the compressed
  // arenas in one pass at the end.
  constexpr size_t kCommitWindow = 8192;
  const size_t total = store.total_count();
  std::vector<std::vector<uint32_t>> seqs(total);
  std::vector<std::vector<TlEntry>> tls(index.clusters_.size());
  for (size_t base = 0; base < total; base += kCommitWindow) {
    const size_t count = std::min(kCommitWindow, total - base);
    std::vector<TrajContribution> contributions =
        util::ParallelMap<TrajContribution>(threads, count, [&](size_t i) {
          const TrajId t = static_cast<TrajId>(base + i);
          if (!store.is_alive(t)) return TrajContribution();
          return ComputeContribution(store.trajectory(t), index.node_cluster_,
                                     index.node_rt_);
        });
    for (size_t i = 0; i < count; ++i) {
      const TrajId t = static_cast<TrajId>(base + i);
      if (!store.is_alive(t)) continue;
      TrajContribution& c = contributions[i];
      index.stats_.raw_postings += c.raw_postings;
      index.stats_.compressed_postings += c.seq.size();
      seqs[t] = std::move(c.seq);
      for (const auto& [g, dr] : c.best) tls[g].push_back({t, dr});
    }
  }
  index.FreezePostings(tls, seqs);

  // 4. Neighbor lists CL: centers within round trip 4 R (1 + γ). Each
  // cluster's bounded search is independent; chunks carry their own engine.
  const double horizon = 4.0 * config.radius_m * (1.0 + config.gamma);
  std::vector<uint32_t> center_cluster(net.num_nodes(),
                                       std::numeric_limits<uint32_t>::max());
  for (uint32_t g = 0; g < index.clusters_.size(); ++g) {
    center_cluster[index.clusters_[g].center] = g;
  }
  // Coarse chunks: each carries its own engine with O(num_nodes) arrays,
  // and a single chunk when this build runs inline (serial, or nested on a
  // MultiIndex pool worker).
  const size_t cl_grain = util::CoarseGrain(threads, index.clusters_.size());
  util::ParallelFor(
      threads, index.clusters_.size(),
      [&](size_t begin, size_t end) {
        const std::unique_ptr<graph::spf::DistanceQuery> query =
            graph::spf::MakeQueryOrDijkstra(backend, &net);
        for (size_t g = begin; g < end; ++g) {
          const std::vector<graph::RoundTrip> rts =
              query->BoundedRoundTrip(index.clusters_[g].center, horizon);
          auto& cl = index.clusters_[g].cl;
          for (const graph::RoundTrip& rt : rts) {
            const uint32_t other = center_cluster[rt.node];
            if (other == std::numeric_limits<uint32_t>::max() ||
                other == static_cast<uint32_t>(g)) {
              continue;
            }
            cl.push_back({other, static_cast<float>(rt.total())});
          }
          std::sort(cl.begin(), cl.end(),
                    [](const ClEntry& a, const ClEntry& b) {
                      return a.dr_m < b.dr_m ||
                             (util::BitEqual(a.dr_m, b.dr_m) &&
                              a.cluster < b.cluster);
                    });
        }
      },
      cl_grain);

  // 5. Stats.
  uint64_t tl_total = 0, cl_total = 0;
  for (const Cluster& c : index.clusters_) {
    tl_total += c.tl.size();
    cl_total += c.cl.size();
  }
  const double eta = static_cast<double>(index.clusters_.size());
  index.stats_.mean_tl_size = eta == 0 ? 0.0 : static_cast<double>(tl_total) / eta;
  index.stats_.mean_cl_size = eta == 0 ? 0.0 : static_cast<double>(cl_total) / eta;
  index.stats_.build_seconds = timer.Seconds();
  return index;
}

void ClusterIndex::ElectRepresentative(const traj::TrajectoryStore& store,
                                       const tops::SiteSet& sites, uint32_t g,
                                       const std::vector<bool>* site_alive) {
  Cluster& cluster = clusters_[g];
  cluster.representative = tops::kInvalidSite;
  cluster.rep_rt_m = 0.0f;
  double best_key = 0.0;
  for (SiteId s : cluster.sites) {
    if (site_removed_[s]) continue;
    if (site_alive != nullptr && !(*site_alive)[s]) continue;
    const NodeId node = sites.node(s);
    double key;
    if (config_.representative_rule == RepresentativeRule::kClosestToCenter) {
      key = node_rt_[node];  // smaller is better
      if (cluster.representative == tops::kInvalidSite || key < best_key) {
        cluster.representative = s;
        cluster.rep_rt_m = static_cast<float>(key);
        best_key = key;
      }
    } else {
      // Most-frequented: larger posting count is better.
      key = static_cast<double>(store.postings(node).size());
      if (cluster.representative == tops::kInvalidSite || key > best_key) {
        cluster.representative = s;
        cluster.rep_rt_m = node_rt_[node];
        best_key = key;
      }
    }
  }
}

void ClusterIndex::FreezePostings(const std::vector<std::vector<TlEntry>>& tls,
                                  const std::vector<std::vector<uint32_t>>& seqs) {
  store::PostingArenaBuilder tl_builder;
  for (const auto& list : tls) tl_builder.AddPairList(list);
  tl_arena_ = tl_builder.Finish();
  for (uint32_t g = 0; g < clusters_.size(); ++g) {
    clusters_[g].tl.Freeze(tl_arena_.PairList<TlEntry>(g));
  }
  store::PostingArenaBuilder cc_builder;
  for (const auto& seq : seqs) cc_builder.AddU32List(seq);
  cc_arena_ = cc_builder.Finish();
  cc_count_ = seqs.size();
  cc_overlay_.clear();
  cc_removed_.clear();
}

store::PostingListView ClusterIndex::cluster_sequence_view(TrajId t) const {
  if (t >= cc_count_ || cc_removed_.count(t) != 0) return {};
  const auto it = cc_overlay_.find(t);
  if (it != cc_overlay_.end()) {
    return store::PostingListView::Raw(it->second.data(), it->second.size());
  }
  if (t < cc_arena_.num_lists()) return cc_arena_.U32List(t);
  return {};
}

void ClusterIndex::AddTrajectory(const traj::TrajectoryStore& store, TrajId t) {
  TrajContribution c =
      ComputeContribution(store.trajectory(t), node_cluster_, node_rt_);
  stats_.raw_postings += c.raw_postings;
  stats_.compressed_postings += c.seq.size();
  cc_removed_.erase(t);
  cc_overlay_[t] = std::move(c.seq);
  if (t >= cc_count_) cc_count_ = t + 1;
  for (const auto& [g, dr] : c.best) {
    clusters_[g].tl.Append({t, dr});
  }
}

void ClusterIndex::RemoveTrajectory(TrajId t) {
  if (t >= cc_count_) return;
  // Distinct clusters of the sequence (materialized before the tombstone
  // lands below).
  std::vector<uint32_t> distinct = cluster_sequence(t);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  for (uint32_t g : distinct) {
    clusters_[g].tl.Remove(t);
  }
  cc_overlay_.erase(t);
  if (t < cc_arena_.num_lists()) cc_removed_.insert(t);
}

void ClusterIndex::AddSite(const traj::TrajectoryStore& store,
                           const tops::SiteSet& sites, SiteId s) {
  if (site_removed_.size() <= s) site_removed_.resize(s + 1, false);
  site_removed_[s] = false;
  const NodeId node = sites.node(s);
  const uint32_t g = node_cluster_[node];
  Cluster& cluster = clusters_[g];
  if (std::find(cluster.sites.begin(), cluster.sites.end(), s) ==
      cluster.sites.end()) {
    cluster.sites.push_back(s);
  }
  // Representative maintenance: adopt the new site if it wins under the
  // configured rule.
  if (cluster.representative == tops::kInvalidSite) {
    cluster.representative = s;
    cluster.rep_rt_m = node_rt_[node];
    return;
  }
  if (config_.representative_rule == RepresentativeRule::kClosestToCenter) {
    if (node_rt_[node] < cluster.rep_rt_m) {
      cluster.representative = s;
      cluster.rep_rt_m = node_rt_[node];
    }
  } else {
    const size_t new_count = store.postings(node).size();
    const size_t old_count =
        store.postings(sites.node(cluster.representative)).size();
    if (new_count > old_count) {
      cluster.representative = s;
      cluster.rep_rt_m = node_rt_[node];
    }
  }
}

void ClusterIndex::RemoveSite(const traj::TrajectoryStore& store,
                              const tops::SiteSet& sites, SiteId s) {
  if (site_removed_.size() <= s) site_removed_.resize(s + 1, false);
  site_removed_[s] = true;
  const uint32_t g = node_cluster_[sites.node(s)];
  if (clusters_[g].representative == s) {
    ElectRepresentative(store, sites, g, nullptr);
  }
}

uint64_t ClusterIndex::MemoryBytes() const {
  uint64_t total = 0;
  for (const Cluster& c : clusters_) {
    total += sizeof(Cluster);
    total += util::VectorBytes(c.sites) + util::VectorBytes(c.cl);
  }
  total += util::VectorBytes(node_cluster_) + util::VectorBytes(node_rt_);
  total += PostingsBytesCompressed();
  total += site_removed_.capacity() / 8;
  return total;
}

uint64_t ClusterIndex::PostingsBytesCompressed() const {
  uint64_t total = tl_arena_.bytes() + cc_arena_.bytes();
  for (const Cluster& c : clusters_) total += c.tl.OverlayBytes();
  for (const auto& [t, seq] : cc_overlay_) {
    total += sizeof(t) + sizeof(seq) + util::VectorBytes(seq);
  }
  total += cc_removed_.size() * sizeof(traj::TrajId);
  return total;
}

uint64_t ClusterIndex::PostingsBytesRaw() const {
  // The pre-compression representation: one std::vector per CC sequence
  // and per TL list, full-width entries. Sizes come from the O(1) count
  // prefixes, so this never decodes entry payloads.
  uint64_t total =
      static_cast<uint64_t>(cc_count_) * sizeof(std::vector<uint32_t>);
  for (traj::TrajId t = 0; t < cc_count_; ++t) {
    total += cluster_sequence_view(t).size() * sizeof(uint32_t);
  }
  for (const Cluster& c : clusters_) {
    total += sizeof(std::vector<TlEntry>) + c.tl.size() * sizeof(TlEntry);
  }
  return total;
}

}  // namespace netclus::index
