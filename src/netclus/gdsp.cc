#include "netclus/gdsp.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/dijkstra.h"
#include "sketch/fm_sketch.h"
#include "util/logging.h"
#include "util/timer.h"

namespace netclus::index {

namespace {

using graph::NodeId;

constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();

// Dominating sets Λ(v) with round-trip distances, for all v. The dominance
// relation is symmetric, but both directions are materialized for O(1)
// residual updates.
struct DominationLists {
  // CSR layout: lambda[offsets[v] .. offsets[v+1]) are (node, rt) pairs.
  std::vector<uint64_t> offsets;
  std::vector<NodeId> nodes;
  std::vector<float> rt;
};

DominationLists BuildDomination(const graph::RoadNetwork& net, double radius_m,
                                const graph::spf::DistanceBackend* backend,
                                uint64_t* total_edges) {
  const size_t n = net.num_nodes();
  const std::unique_ptr<graph::spf::DistanceQuery> query =
      graph::spf::MakeQueryOrDijkstra(backend, &net);
  DominationLists out;
  out.offsets.assign(n + 1, 0);
  std::vector<std::vector<std::pair<NodeId, float>>> lists(n);
  uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<graph::RoundTrip> rts =
        query->BoundedRoundTrip(v, 2.0 * radius_m);
    auto& list = lists[v];
    list.reserve(rts.size());
    for (const graph::RoundTrip& r : rts) {
      list.emplace_back(r.node, static_cast<float>(r.total()));
    }
    total += list.size();
  }
  out.nodes.resize(total);
  out.rt.resize(total);
  uint64_t pos = 0;
  for (NodeId v = 0; v < n; ++v) {
    out.offsets[v] = pos;
    for (const auto& [node, rt] : lists[v]) {
      out.nodes[pos] = node;
      out.rt[pos] = rt;
      ++pos;
    }
  }
  out.offsets[n] = pos;
  *total_edges = total;
  return out;
}

// Assigns the not-yet-clustered members of Λ(center) to a new cluster;
// returns how many nodes were newly assigned.
size_t FormCluster(const DominationLists& dom, NodeId center,
                   uint32_t cluster_id, GdspResult* result) {
  size_t newly = 0;
  for (uint64_t i = dom.offsets[center]; i < dom.offsets[center + 1]; ++i) {
    const NodeId u = dom.nodes[i];
    if (result->assignment[u] == kUnassigned) {
      result->assignment[u] = cluster_id;
      result->rt_to_center[u] = dom.rt[i];
      ++newly;
    }
  }
  // The center always dominates itself (round trip 0); BoundedRoundTrip
  // includes it, but keep the invariant explicit.
  if (result->assignment[center] != cluster_id) {
    result->assignment[center] = cluster_id;
    result->rt_to_center[center] = 0.0f;
    ++newly;
  }
  return newly;
}

GdspResult RunLazyExact(const graph::RoadNetwork& net,
                        const DominationLists& dom) {
  const size_t n = net.num_nodes();
  GdspResult result;
  result.assignment.assign(n, kUnassigned);
  result.rt_to_center.assign(n, 0.0f);

  // Lazy greedy: heap keyed by stale residual counts (valid upper bounds).
  using Entry = std::pair<uint32_t, NodeId>;  // (residual count, node)
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < n; ++v) {
    heap.push({static_cast<uint32_t>(dom.offsets[v + 1] - dom.offsets[v]), v});
  }
  auto residual = [&](NodeId v) {
    uint32_t count = 0;
    for (uint64_t i = dom.offsets[v]; i < dom.offsets[v + 1]; ++i) {
      if (result.assignment[dom.nodes[i]] == kUnassigned) ++count;
    }
    return count;
  };

  size_t assigned = 0;
  while (assigned < n && !heap.empty()) {
    const auto [stale_count, v] = heap.top();
    heap.pop();
    if (result.assignment[v] != kUnassigned) continue;  // no longer a candidate
    const uint32_t fresh = residual(v);
    // Lazy re-evaluation (Minoux): stale keys are upper bounds because
    // residual counts only shrink; if the fresh count still beats the next
    // stale bound, v is the exact argmax.
    if (!heap.empty() && fresh < heap.top().first) {
      heap.push({fresh, v});
      continue;
    }
    const uint32_t cluster_id = static_cast<uint32_t>(result.centers.size());
    result.centers.push_back(v);
    const size_t newly = FormCluster(dom, v, cluster_id, &result);
    NC_CHECK_GT(newly, 0u);
    assigned += newly;
  }
  NC_CHECK_EQ(assigned, n);
  return result;
}

GdspResult RunFmSketch(const graph::RoadNetwork& net,
                       const DominationLists& dom, const GdspConfig& config) {
  const size_t n = net.num_nodes();
  GdspResult result;
  result.assignment.assign(n, kUnassigned);
  result.rt_to_center.assign(n, 0.0f);

  // Sketch of Λ(v) per node; base sketch accumulates clustered nodes.
  std::vector<sketch::FmSketch> sketches;
  sketches.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    sketch::FmSketch sk(config.fm_copies, config.fm_seed);
    for (uint64_t i = dom.offsets[v]; i < dom.offsets[v + 1]; ++i) {
      sk.Add(dom.nodes[i]);
    }
    sketches.push_back(std::move(sk));
  }
  std::vector<double> standalone(n);
  for (NodeId v = 0; v < n; ++v) standalone[v] = sketches[v].Estimate();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return standalone[a] > standalone[b] || (standalone[a] == standalone[b] && a < b);
  });

  sketch::FmSketch base(config.fm_copies, config.fm_seed);
  double base_estimate = 0.0;
  size_t assigned = 0;
  while (assigned < n) {
    // Scan in descending standalone order with early termination.
    NodeId best = graph::kInvalidNode;
    double best_marginal = -1.0;
    for (NodeId v : order) {
      if (result.assignment[v] != kUnassigned) continue;
      if (best != graph::kInvalidNode && standalone[v] <= best_marginal) break;
      const double marginal = base.UnionEstimate(sketches[v]) - base_estimate;
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = v;
      }
    }
    if (best == graph::kInvalidNode) {
      // Estimation left some nodes uncovered: sweep them into singleton
      // clusters deterministically.
      for (NodeId v = 0; v < n; ++v) {
        if (result.assignment[v] == kUnassigned) {
          const uint32_t cluster_id = static_cast<uint32_t>(result.centers.size());
          result.centers.push_back(v);
          assigned += FormCluster(dom, v, cluster_id, &result);
        }
      }
      break;
    }
    const uint32_t cluster_id = static_cast<uint32_t>(result.centers.size());
    result.centers.push_back(best);
    assigned += FormCluster(dom, best, cluster_id, &result);
    base.Merge(sketches[best]);
    base_estimate = base.Estimate();
  }
  return result;
}

}  // namespace

GdspResult GreedyGdsp(const graph::RoadNetwork& net, const GdspConfig& config,
                      const graph::spf::DistanceBackend* backend) {
  NC_CHECK_GT(config.radius_m, 0.0);
  util::WallTimer timer;
  uint64_t total_edges = 0;
  const DominationLists dom =
      BuildDomination(net, config.radius_m, backend, &total_edges);

  GdspResult result = config.strategy == GdspStrategy::kLazyExact
                          ? RunLazyExact(net, dom)
                          : RunFmSketch(net, dom, config);
  result.build_seconds = timer.Seconds();
  result.dominance_edges = total_edges;
  result.mean_dominating_set_size =
      net.num_nodes() == 0
          ? 0.0
          : static_cast<double>(total_edges) / static_cast<double>(net.num_nodes());
  // Post-conditions: total assignment, centers map to themselves.
  for (uint32_t a : result.assignment) NC_CHECK_NE(a, kUnassigned);
  return result;
}

}  // namespace netclus::index
