// Greedy-GDSP: generalized dominating set clustering (Sec. 4.1).
//
// GDSP (Problem 2): given radius R, vertex u dominates v iff the round trip
// d(u,v) + d(v,u) <= 2R; find a minimal dominating set. The greedy picks, in
// every iteration, the unclustered vertex with the largest *incremental*
// dominating set; the newly dominated vertices become its cluster. The
// approximation bound is (1 + ln n), times (1 + ε') when FM sketches
// estimate the incremental counts (Theorem 5).
//
// Two strategies:
//  * kLazyExact (default): exact incremental counts with lazy re-evaluation
//    (Minoux). Exactness comes free because stale upper bounds only ever
//    shrink (submodularity), so the heap top is re-verified before use.
//  * kFmSketch: the paper's FM-sketch estimation with the sorted-scan early
//    termination of Sec. 3.5. Kept for fidelity and benchmarked against the
//    exact strategy (bench_ablation_gdsp).
#ifndef NETCLUS_NETCLUS_GDSP_H_
#define NETCLUS_NETCLUS_GDSP_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "graph/spf/distance_backend.h"

namespace netclus::index {

enum class GdspStrategy {
  kLazyExact,
  kFmSketch,
};

struct GdspConfig {
  double radius_m = 200.0;  ///< R: round-trip dominance threshold is 2R
  GdspStrategy strategy = GdspStrategy::kLazyExact;
  uint32_t fm_copies = 30;
  uint64_t fm_seed = 0xd051e7a0c0ffeeULL;
};

struct GdspResult {
  /// Cluster centers in selection order.
  std::vector<graph::NodeId> centers;
  /// node -> cluster index (into `centers`); every node is assigned.
  std::vector<uint32_t> assignment;
  /// node -> round-trip distance to its cluster center (<= 2R).
  std::vector<float> rt_to_center;
  double build_seconds = 0.0;
  double mean_dominating_set_size = 0.0;  ///< mean |Λ(v)| (Table 11)
  uint64_t dominance_edges = 0;           ///< Σ |Λ(v)|
};

/// `backend` (optional, not owned) accelerates the Λ(v) round-trip
/// searches; null = plain Dijkstra. The clustering is bit-identical under
/// every backend (distances are — see src/graph/spf/).
GdspResult GreedyGdsp(const graph::RoadNetwork& net, const GdspConfig& config,
                      const graph::spf::DistanceBackend* backend = nullptr);

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_GDSP_H_
