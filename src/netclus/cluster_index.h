// One NetClus index instance I_p: a GDSP clustering of the road network at
// radius R_p plus the per-cluster information of Sec. 4.3:
//   1. center c_i;
//   2. representative r_i — the candidate site nearest to the center
//      (Sec. 4.2, option 2; option 1 "most-frequented site" is available
//      for the ablation bench);
//   3. trajectory list TL(g_i) = {(T_j, d_r(T_j, c_i))};
//   4. neighbor list CL(g_i) = {(g_j, d_r(c_i, c_j))}, for centers within
//      round-trip 4 R (1 + γ), sorted by distance;
//   5. member nodes with d_r(v, c_i).
// Trajectories are also stored in compressed form as cluster sequences
// CC(T_j) (consecutive duplicates collapsed), which is both the compression
// the paper credits for NetClus's footprint and the handle for dynamic
// trajectory deletion.
//
// Postings storage: TL lists and CC sequences — the structures that
// dominate the instance footprint — are frozen at build/load time into
// delta-varint arenas (src/store/arena.h) and traversed through lazy
// views, cutting their resident bytes well below the vector-of-vectors
// representation. Dynamic updates (Sec. 6) never rewrite the frozen
// bytes: additions land in small mutable overlays, removals in
// tombstones, so copies of an instance (MultiIndex::Clone, the serving
// layer's snapshots) share the arena blocks and pay only for their own
// overlays.
#ifndef NETCLUS_NETCLUS_CLUSTER_INDEX_H_
#define NETCLUS_NETCLUS_CLUSTER_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netclus/gdsp.h"
#include "store/arena.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"

namespace netclus::store {
class ByteWriter;
class ByteReader;
}  // namespace netclus::store

namespace netclus::index {

enum class RepresentativeRule {
  kClosestToCenter,   ///< Sec. 4.2 option 2 (the paper's choice)
  kMostFrequented,    ///< Sec. 4.2 option 1
};

struct ClusterIndexConfig {
  double radius_m = 200.0;  ///< R_p
  double gamma = 0.75;      ///< neighbor horizon is 4 R (1 + γ)
  GdspStrategy gdsp_strategy = GdspStrategy::kLazyExact;
  uint32_t fm_copies = 30;
  RepresentativeRule representative_rule = RepresentativeRule::kClosestToCenter;
  /// Worker threads for the build (0 = NETCLUS_THREADS default). Applies to
  /// representative election, TL/CC construction, and neighbor-list
  /// searches — all per-cluster/per-trajectory independent, so the built
  /// index is identical at every thread count. Runtime-only: not serialized.
  uint32_t threads = 0;
};

/// TL entry: trajectory + its round-trip distance to the cluster center.
struct TlEntry {
  traj::TrajId traj;
  float dr_m;
};

/// CL entry: neighbor cluster + center-to-center round-trip distance.
struct ClEntry {
  uint32_t cluster;
  float dr_m;
};

/// A cluster's trajectory list: an immutable compressed core (a view into
/// the instance's TL arena) plus a mutable overlay for Sec. 6 updates —
/// `extra` holds dynamically added entries, `removed` tombstones frozen
/// entries. Iteration yields exactly the live entries (frozen minus
/// tombstones, then additions); the set is identical to what the plain
/// vector representation would hold, and every consumer is
/// order-insensitive (covers are re-sorted downstream).
class TlList {
 public:
  size_t size() const { return frozen_live_ + extra_.size(); }
  bool empty() const { return size() == 0; }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TlEntry;
    using difference_type = std::ptrdiff_t;
    using pointer = const TlEntry*;
    using reference = const TlEntry&;

    const_iterator() = default;

    reference operator*() const { return current_; }
    pointer operator->() const { return &current_; }

    const_iterator& operator++() {
      --remaining_;
      if (remaining_ > 0) Next();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& other) const {
      return remaining_ == other.remaining_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    friend class TlList;

    void Next() {
      while (fit_ != fend_) {
        const TlEntry e = *fit_;
        ++fit_;
        if (removed_ == nullptr ||
            !std::binary_search(removed_->begin(), removed_->end(), e.traj)) {
          current_ = e;
          return;
        }
      }
      current_ = *eit_++;
    }

    store::PairListView<TlEntry>::const_iterator fit_, fend_;
    const TlEntry* eit_ = nullptr;
    const std::vector<traj::TrajId>* removed_ = nullptr;
    TlEntry current_{};
    size_t remaining_ = 0;  // live entries left, including current_
  };

  const_iterator begin() const {
    const_iterator it;
    it.remaining_ = size();
    it.fit_ = frozen_.begin();
    it.fend_ = frozen_.end();
    it.eit_ = extra_.data();
    it.removed_ = removed_.empty() ? nullptr : &removed_;
    if (it.remaining_ > 0) it.Next();
    return it;
  }
  const_iterator end() const { return const_iterator(); }

  /// Bulk traversal of the live entries — same sequence as iteration, but
  /// the frozen core decodes through the arena view's block/SIMD fast
  /// path instead of one entry per iterator step.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (removed_.empty()) {
      frozen_.ForEach(fn);
    } else {
      frozen_.ForEach([&](const TlEntry& e) {
        if (!std::binary_search(removed_.begin(), removed_.end(), e.traj)) {
          fn(e);
        }
      });
    }
    for (const TlEntry& e : extra_) fn(e);
  }

  /// O(i) — tests and cold paths only.
  TlEntry operator[](size_t i) const {
    auto it = begin();
    for (size_t k = 0; k < i; ++k) ++it;
    return *it;
  }

  std::vector<TlEntry> Materialize() const {
    std::vector<TlEntry> out;
    out.reserve(size());
    for (const TlEntry& e : *this) out.push_back(e);
    return out;
  }

  /// Installs the frozen core (resets overlays).
  void Freeze(store::PairListView<TlEntry> frozen) {
    frozen_ = frozen;
    frozen_live_ = frozen.size();
    extra_.clear();
    removed_.clear();
  }

  void Append(const TlEntry& entry) { extra_.push_back(entry); }

  /// Removes the (unique) entry for `t`; true when one was live.
  bool Remove(traj::TrajId t) {
    for (size_t i = 0; i < extra_.size(); ++i) {
      if (extra_[i].traj == t) {
        extra_[i] = extra_.back();
        extra_.pop_back();
        return true;
      }
    }
    if (std::binary_search(removed_.begin(), removed_.end(), t)) return false;
    for (const TlEntry& e : frozen_) {
      if (e.traj == t) {
        removed_.insert(std::upper_bound(removed_.begin(), removed_.end(), t),
                        t);
        --frozen_live_;
        return true;
      }
    }
    return false;
  }

  /// True when Sec. 6 updates have diverged this list from its frozen
  /// core (additions or tombstones present).
  bool has_overlay() const { return !extra_.empty() || !removed_.empty(); }

  /// Overlay footprint (the frozen arena is accounted at instance level).
  uint64_t OverlayBytes() const {
    return extra_.capacity() * sizeof(TlEntry) +
           removed_.capacity() * sizeof(traj::TrajId);
  }

 private:
  store::PairListView<TlEntry> frozen_;
  size_t frozen_live_ = 0;            ///< frozen entries not tombstoned
  std::vector<TlEntry> extra_;        ///< dynamically added entries
  std::vector<traj::TrajId> removed_; ///< sorted tombstones over frozen_
};

struct Cluster {
  graph::NodeId center = graph::kInvalidNode;
  tops::SiteId representative = tops::kInvalidSite;
  float rep_rt_m = 0.0f;  ///< d_r(c_i, r_i)
  std::vector<tops::SiteId> sites;  ///< candidate sites inside the cluster
  TlList tl;
  std::vector<ClEntry> cl;  ///< sorted by dr_m ascending
};

struct ClusterIndexStats {
  double gdsp_seconds = 0.0;
  double build_seconds = 0.0;  ///< total, including GDSP
  double mean_dominating_set_size = 0.0;
  double mean_tl_size = 0.0;
  double mean_cl_size = 0.0;
  uint64_t compressed_postings = 0;  ///< Σ |CC(T)|
  uint64_t raw_postings = 0;         ///< Σ |T| (pre-compression)
};

class ClusterIndex {
 public:
  /// Builds the instance over all live trajectories in `store`. `backend`
  /// (optional, not owned, build-time only) accelerates the GDSP and
  /// neighbor-list searches; null = plain Dijkstra. The instance is
  /// bit-identical under every backend.
  static ClusterIndex Build(const traj::TrajectoryStore& store,
                            const tops::SiteSet& sites,
                            const ClusterIndexConfig& config,
                            const graph::spf::DistanceBackend* backend = nullptr);

  double radius_m() const { return config_.radius_m; }
  size_t num_clusters() const { return clusters_.size(); }
  const Cluster& cluster(uint32_t g) const { return clusters_[g]; }
  const std::vector<Cluster>& clusters() const { return clusters_; }

  uint32_t cluster_of(graph::NodeId v) const { return node_cluster_[v]; }
  float node_rt_m(graph::NodeId v) const { return node_rt_[v]; }

  /// Number of network nodes this instance was clustered over.
  size_t num_nodes() const { return node_cluster_.size(); }

  /// Number of trajectory ids with a stored cluster sequence slot.
  size_t num_sequences() const { return cc_count_; }

  /// Size of the site id space this instance knows (the removed-flag
  /// array); every site id stored anywhere in the instance is below it.
  size_t num_site_slots() const { return site_removed_.size(); }

  /// Compressed cluster sequence of a trajectory, materialized (empty for
  /// unknown/removed ids). Cold paths and tests; hot paths use the view.
  std::vector<uint32_t> cluster_sequence(traj::TrajId t) const {
    return cluster_sequence_view(t).Materialize();
  }

  /// Zero-copy view over CC(T): decodes straight off the frozen arena (or
  /// points at the overlay for dynamically added trajectories).
  store::PostingListView cluster_sequence_view(traj::TrajId t) const;

  const ClusterIndexStats& stats() const { return stats_; }

  /// Analytic memory footprint, bytes (compressed representation).
  uint64_t MemoryBytes() const;

  /// Actual bytes behind TL + CC postings (arenas + dynamic overlays).
  uint64_t PostingsBytesCompressed() const;

  /// What the same postings would occupy as vectors of full-width
  /// entries — the pre-compression representation, for Table 9 reporting.
  uint64_t PostingsBytesRaw() const;

  /// Identity of the frozen CC arena bytes: equal across copies that share
  /// backing blocks (pins the snapshot-sharing behavior in tests).
  const void* cc_arena_id() const { return cc_arena_.data_block().id(); }

  // --- dynamic updates (Sec. 6) -------------------------------------------

  /// Registers an already-stored trajectory into TL / CC.
  void AddTrajectory(const traj::TrajectoryStore& store, traj::TrajId t);

  /// Removes a trajectory from the TL lists of the clusters it crosses.
  void RemoveTrajectory(traj::TrajId t);

  /// Registers a new candidate site at an existing node (Sec. 6 restricts
  /// the implementation to sites on V; see DESIGN.md). May replace the
  /// cluster's representative.
  void AddSite(const traj::TrajectoryStore& store, const tops::SiteSet& sites,
               tops::SiteId s);

  /// Untags a site; if it was a representative, elects a replacement by the
  /// configured rule.
  void RemoveSite(const traj::TrajectoryStore& store,
                  const tops::SiteSet& sites, tops::SiteId s);

  // --- persistence (implemented in index_io.cc) ----------------------------

  /// Serializes this instance to the stream (v1 text).
  void WriteTo(std::ostream& os) const;

  /// Deserializes an instance written by WriteTo.
  static bool ReadFrom(std::istream& is, ClusterIndex* out, std::string* error);

  /// Appends this instance as a binary blob (canonicalized: overlays
  /// and tombstones are folded into fresh arenas). `layout` selects the
  /// posting-arena wire format: kFlat for v2 files, kBlocked for v3.
  /// Arenas whose in-memory layout differs from the target are re-encoded.
  void WriteBinary(store::ByteWriter& out, store::ListLayout layout) const;

  /// Parses a v2/v3 instance blob whose arenas use `layout`. Arena byte
  /// ranges alias `in`'s backing block — the mmap'ed file or the
  /// whole-file heap read — so postings are not copied.
  static bool ReadBinary(store::ByteReader& in, store::ListLayout layout,
                         ClusterIndex* out, std::string* error);

 private:
  void ElectRepresentative(const traj::TrajectoryStore& store,
                           const tops::SiteSet& sites, uint32_t g,
                           const std::vector<bool>* site_alive);

  /// Encodes per-cluster TL lists and per-trajectory CC sequences into the
  /// frozen arenas and wires the cluster views (resets overlays).
  void FreezePostings(const std::vector<std::vector<TlEntry>>& tls,
                      const std::vector<std::vector<uint32_t>>& seqs);

  ClusterIndexConfig config_;
  std::vector<Cluster> clusters_;
  std::vector<uint32_t> node_cluster_;
  std::vector<float> node_rt_;
  std::vector<bool> site_removed_;
  ClusterIndexStats stats_;

  // Frozen postings + dynamic overlays. Arena blocks are refcounted and
  // shared across copies; overlays are per-copy.
  store::PostingArena tl_arena_;  ///< per-cluster TL lists
  store::PostingArena cc_arena_;  ///< per-trajectory CC sequences
  std::unordered_map<traj::TrajId, std::vector<uint32_t>> cc_overlay_;
  std::unordered_set<traj::TrajId> cc_removed_;
  size_t cc_count_ = 0;  ///< sequence id space (max indexed TrajId + 1)
};

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_CLUSTER_INDEX_H_
