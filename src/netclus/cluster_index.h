// One NetClus index instance I_p: a GDSP clustering of the road network at
// radius R_p plus the per-cluster information of Sec. 4.3:
//   1. center c_i;
//   2. representative r_i — the candidate site nearest to the center
//      (Sec. 4.2, option 2; option 1 "most-frequented site" is available
//      for the ablation bench);
//   3. trajectory list TL(g_i) = {(T_j, d_r(T_j, c_i))};
//   4. neighbor list CL(g_i) = {(g_j, d_r(c_i, c_j))}, for centers within
//      round-trip 4 R (1 + γ), sorted by distance;
//   5. member nodes with d_r(v, c_i).
// Trajectories are also stored in compressed form as cluster sequences
// CC(T_j) (consecutive duplicates collapsed), which is both the compression
// the paper credits for NetClus's footprint and the handle for dynamic
// trajectory deletion.
#ifndef NETCLUS_NETCLUS_CLUSTER_INDEX_H_
#define NETCLUS_NETCLUS_CLUSTER_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netclus/gdsp.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"

namespace netclus::index {

enum class RepresentativeRule {
  kClosestToCenter,   ///< Sec. 4.2 option 2 (the paper's choice)
  kMostFrequented,    ///< Sec. 4.2 option 1
};

struct ClusterIndexConfig {
  double radius_m = 200.0;  ///< R_p
  double gamma = 0.75;      ///< neighbor horizon is 4 R (1 + γ)
  GdspStrategy gdsp_strategy = GdspStrategy::kLazyExact;
  uint32_t fm_copies = 30;
  RepresentativeRule representative_rule = RepresentativeRule::kClosestToCenter;
  /// Worker threads for the build (0 = NETCLUS_THREADS default). Applies to
  /// representative election, TL/CC construction, and neighbor-list
  /// searches — all per-cluster/per-trajectory independent, so the built
  /// index is identical at every thread count. Runtime-only: not serialized.
  uint32_t threads = 0;
};

/// TL entry: trajectory + its round-trip distance to the cluster center.
struct TlEntry {
  traj::TrajId traj;
  float dr_m;
};

/// CL entry: neighbor cluster + center-to-center round-trip distance.
struct ClEntry {
  uint32_t cluster;
  float dr_m;
};

struct Cluster {
  graph::NodeId center = graph::kInvalidNode;
  tops::SiteId representative = tops::kInvalidSite;
  float rep_rt_m = 0.0f;  ///< d_r(c_i, r_i)
  std::vector<tops::SiteId> sites;  ///< candidate sites inside the cluster
  std::vector<TlEntry> tl;
  std::vector<ClEntry> cl;  ///< sorted by dr_m ascending
};

struct ClusterIndexStats {
  double gdsp_seconds = 0.0;
  double build_seconds = 0.0;  ///< total, including GDSP
  double mean_dominating_set_size = 0.0;
  double mean_tl_size = 0.0;
  double mean_cl_size = 0.0;
  uint64_t compressed_postings = 0;  ///< Σ |CC(T)|
  uint64_t raw_postings = 0;         ///< Σ |T| (pre-compression)
};

class ClusterIndex {
 public:
  /// Builds the instance over all live trajectories in `store`. `backend`
  /// (optional, not owned, build-time only) accelerates the GDSP and
  /// neighbor-list searches; null = plain Dijkstra. The instance is
  /// bit-identical under every backend.
  static ClusterIndex Build(const traj::TrajectoryStore& store,
                            const tops::SiteSet& sites,
                            const ClusterIndexConfig& config,
                            const graph::spf::DistanceBackend* backend = nullptr);

  double radius_m() const { return config_.radius_m; }
  size_t num_clusters() const { return clusters_.size(); }
  const Cluster& cluster(uint32_t g) const { return clusters_[g]; }
  const std::vector<Cluster>& clusters() const { return clusters_; }

  uint32_t cluster_of(graph::NodeId v) const { return node_cluster_[v]; }
  float node_rt_m(graph::NodeId v) const { return node_rt_[v]; }

  /// Number of network nodes this instance was clustered over.
  size_t num_nodes() const { return node_cluster_.size(); }

  /// Number of trajectory ids with a stored cluster sequence.
  size_t num_sequences() const { return cluster_seq_.size(); }

  /// Compressed cluster sequence of a trajectory (empty for ids added after
  /// the build unless AddTrajectory was called).
  const std::vector<uint32_t>& cluster_sequence(traj::TrajId t) const;

  const ClusterIndexStats& stats() const { return stats_; }

  /// Analytic memory footprint, bytes.
  uint64_t MemoryBytes() const;

  // --- dynamic updates (Sec. 6) -------------------------------------------

  /// Registers an already-stored trajectory into TL / CC.
  void AddTrajectory(const traj::TrajectoryStore& store, traj::TrajId t);

  /// Removes a trajectory from the TL lists of the clusters it crosses.
  void RemoveTrajectory(traj::TrajId t);

  /// Registers a new candidate site at an existing node (Sec. 6 restricts
  /// the implementation to sites on V; see DESIGN.md). May replace the
  /// cluster's representative.
  void AddSite(const traj::TrajectoryStore& store, const tops::SiteSet& sites,
               tops::SiteId s);

  /// Untags a site; if it was a representative, elects a replacement by the
  /// configured rule.
  void RemoveSite(const traj::TrajectoryStore& store,
                  const tops::SiteSet& sites, tops::SiteId s);

  // --- persistence (implemented in index_io.cc) ----------------------------

  /// Serializes this instance to the stream.
  void WriteTo(std::ostream& os) const;

  /// Deserializes an instance written by WriteTo.
  static bool ReadFrom(std::istream& is, ClusterIndex* out, std::string* error);

 private:
  void ElectRepresentative(const traj::TrajectoryStore& store,
                           const tops::SiteSet& sites, uint32_t g,
                           const std::vector<bool>* site_alive);

  ClusterIndexConfig config_;
  std::vector<Cluster> clusters_;
  std::vector<uint32_t> node_cluster_;
  std::vector<float> node_rt_;
  std::vector<std::vector<uint32_t>> cluster_seq_;  // CC(T), by TrajId
  std::vector<bool> site_removed_;
  ClusterIndexStats stats_;
};

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_CLUSTER_INDEX_H_
