// Online phase: TOPS-Cluster queries over the multi-resolution index
// (Sec. 5).
//
// Given (k, τ, ψ): pick instance p = ⌊log_{1+γ}(τ/τ_min)⌋; for every
// cluster representative r_i build the approximate trajectory cover
//   T̂C(r_i) = { T_j ∈ TL(g_i) ∪ TL(neighbors) : d̂_r(T_j, r_i) ≤ τ },
//   d̂_r(T_j, r_i) = d_r(T_j, c_j) + d_r(c_j, c_i) + d_r(c_i, r_i)   (Eq. 9)
// (taking the minimum estimate when T_j is reachable through several
// clusters); then run the *unchanged* solver family — Inc-Greedy,
// FM-greedy, cost / capacity / market-share greedy — on the representatives
// by wrapping T̂C in a tops::CoverageIndex. d̂_r ≥ d_r, so T̂C ⊆ TC and the
// Theorem 7 bounds hold.
//
// Since the planner/executor refactor, QueryEngine is a thin compatibility
// facade: every method plans the request with exec::Planner and runs it
// through exec::Executor's CoverBuild → Solve → Assemble stages (see
// src/exec/ and docs/query_planning.md). The methods are defined in
// src/exec/query_engine.cc — link netclus_exec (any target linking
// netclus_api or netclus_serve already does). Results are bit-identical
// to the pre-refactor monolithic path at every thread count and distance
// backend; tests/test_exec.cc pins this differentially.
#ifndef NETCLUS_NETCLUS_QUERY_H_
#define NETCLUS_NETCLUS_QUERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "netclus/multi_index.h"
#include "tops/coverage.h"
#include "tops/fm_greedy.h"
#include "tops/inc_greedy.h"
#include "tops/variants.h"

namespace netclus::exec {
struct ExecContext;
}  // namespace netclus::exec

namespace netclus::index {

struct QueryConfig {
  uint32_t k = 5;
  double tau_m = 800.0;
  /// FMNETCLUS: FM-greedy on representatives (binary ψ only). FM-greedy has
  /// no existing-services support, so a query with both falls back to
  /// Inc-Greedy (with a warning, logged once per engine) rather than
  /// silently ignoring ES.
  bool use_fm_sketch = false;
  uint32_t fm_copies = 30;
  /// Existing services (Sec. 7.3), as site ids; each is mapped to its
  /// cluster's representative in the clustered space.
  std::vector<tops::SiteId> existing_services;
  /// Worker threads for T̂C construction and the greedy argmax scans
  /// (0 = NETCLUS_THREADS default). Results are identical at any thread
  /// count; see docs/parallelism.md.
  uint32_t threads = 0;
};

struct QueryResult {
  tops::Selection selection;     ///< sites = real SiteIds (representatives)
  size_t instance_used = 0;
  size_t clusters_considered = 0;   ///< representatives entering the greedy
  /// T̂C construction cost attributed to this query. When the cover was
  /// shared by g queries of a batch each reports build/g; a cover served
  /// from the serving layer's CoverCache reports 0 (the building query
  /// already paid). `cover_shared` distinguishes the cases.
  double cover_build_seconds = 0.0;
  double total_seconds = 0.0;
  /// Σ |T̂C| working memory attributed to this query (amortized the same
  /// way as cover_build_seconds when the cover is shared).
  uint64_t transient_bytes = 0;
  /// True when this query's T̂C was reused rather than built privately
  /// (batch grouping or a CoverCache hit).
  bool cover_shared = false;
};

class QueryEngine {
 public:
  /// Defined in src/exec/query_engine.cc (allocates the per-engine
  /// execution context: stats registry + warn-once state). Copies of a
  /// QueryEngine share that context.
  QueryEngine(const MultiIndex* index, const traj::TrajectoryStore* store,
              const tops::SiteSet* sites);

  /// Plain TOPS (k, τ, ψ).
  QueryResult Tops(const tops::PreferenceFunction& psi,
                   const QueryConfig& config) const;

  /// TOPS-COST in the clustered space: representative costs are the costs
  /// of the representative sites.
  QueryResult TopsCost(const tops::PreferenceFunction& psi,
                       const QueryConfig& config,
                       const std::vector<double>& site_costs,
                       double budget) const;

  /// TOPS-CAPACITY in the clustered space.
  QueryResult TopsCapacity(const tops::PreferenceFunction& psi,
                           const QueryConfig& config,
                           const std::vector<double>& site_capacities) const;

  /// Builds the clustered-space coverage (T̂C per representative) for a τ.
  /// Exposed for tests; `rep_sites` receives the representative SiteId per
  /// clustered-space index. Each representative's cover is computed
  /// independently, so `threads` (0 = NETCLUS_THREADS default, like every
  /// other knob) never changes the result. Shim over exec::BuildCover.
  tops::CoverageIndex BuildApproxCoverage(double tau_m, size_t instance,
                                          std::vector<tops::SiteId>* rep_sites,
                                          double* build_seconds,
                                          uint32_t threads = 0) const;

  /// The per-engine execution context (stats + warn-once state), for the
  /// layers that drive the planner/executor directly over this engine's
  /// parts (src/api, src/serve).
  exec::ExecContext* exec_context() const { return ctx_.get(); }

 private:
  const MultiIndex* index_;
  const traj::TrajectoryStore* store_;
  const tops::SiteSet* sites_;
  std::shared_ptr<exec::ExecContext> ctx_;
};

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_QUERY_H_
