#include "netclus/jaccard.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/memory.h"
#include "util/timer.h"

namespace netclus::index {

JaccardResult JaccardCluster(const tops::CoverageIndex& coverage,
                             const JaccardConfig& config) {
  NC_CHECK(!coverage.oom());
  NC_CHECK_GT(config.alpha, 0.0);
  util::WallTimer timer;
  JaccardResult result;
  const size_t n = coverage.num_sites();
  constexpr uint32_t kUnclustered = std::numeric_limits<uint32_t>::max();
  result.site_cluster.assign(n, kUnclustered);

  util::MemoryBudget budget(config.memory_budget_bytes);
  // The covering sets themselves are the dominant cost (they must be
  // resident for similarity computation).
  if (!budget.Charge(coverage.MemoryBytes())) {
    result.oom = true;
    result.memory_bytes = budget.used_bytes();
    result.build_seconds = timer.Seconds();
    return result;
  }

  // Seeds in descending weight (binary ψ: weight = |TC|).
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  std::vector<std::pair<double, tops::SiteId>> by_weight(n);
  for (tops::SiteId s = 0; s < n; ++s) {
    by_weight[s] = {coverage.SiteWeight(s, psi), s};
  }
  std::sort(by_weight.begin(), by_weight.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });

  // Intersection sizes via the inverted view: for seed c, walk TC(c) and
  // bump counters for every site covering each trajectory. Overlap scratch
  // is charged against the budget to model the quadratic working set.
  std::vector<uint32_t> overlap(n, 0);
  std::vector<tops::SiteId> touched;
  if (!budget.Charge(util::VectorBytes(overlap))) {
    result.oom = true;
    result.memory_bytes = budget.used_bytes();
    result.build_seconds = timer.Seconds();
    return result;
  }

  for (const auto& [weight, seed] : by_weight) {
    if (result.site_cluster[seed] != kUnclustered) continue;
    const uint32_t cluster_id = static_cast<uint32_t>(result.num_clusters++);
    result.site_cluster[seed] = cluster_id;

    touched.clear();
    const auto seed_tc = coverage.TC(seed);
    seed_tc.ForEach([&](const tops::CoverEntry& e) {
      coverage.SC(e.id).ForEach([&](const tops::CoverEntry& cover) {
        if (result.site_cluster[cover.id] != kUnclustered) return;
        if (overlap[cover.id] == 0) touched.push_back(cover.id);
        ++overlap[cover.id];
      });
    });
    // Working-set charge: pair lists materialized during the scan. This is
    // the term that blows up as τ (and hence |TC| · |SC|) grows.
    if (!budget.Charge(touched.size() * (sizeof(tops::SiteId) + sizeof(uint32_t)) +
                       seed_tc.size() * sizeof(tops::CoverEntry))) {
      result.oom = true;
      result.memory_bytes = budget.used_bytes();
      result.build_seconds = timer.Seconds();
      return result;
    }
    for (tops::SiteId other : touched) {
      const uint32_t inter = overlap[other];
      overlap[other] = 0;
      if (other == seed || result.site_cluster[other] != kUnclustered) continue;
      const size_t uni = seed_tc.size() + coverage.TC(other).size() - inter;
      const double jaccard_sim =
          uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
      if (1.0 - jaccard_sim <= config.alpha) {
        result.site_cluster[other] = cluster_id;
      }
    }
  }
  result.memory_bytes = budget.used_bytes();
  result.build_seconds = timer.Seconds();
  return result;
}

}  // namespace netclus::index
