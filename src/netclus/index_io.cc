#include "netclus/index_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/spf/contraction_hierarchy.h"
#include "netclus/cluster_index.h"
#include "store/binary_io.h"
#include "store/buffer_pool.h"
#include "store/mmap_file.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"

namespace netclus::index {

namespace {

// Structural sanity cap on any serialized count/length. Real indexes stay
// far below it; a corrupt count above it fails fast instead of driving a
// multi-gigabyte allocation. (Reads below also grow containers only as
// fast as actual parsed data, so truncation cannot allocate ahead of the
// stream either.)
constexpr uint64_t kMaxListLength = 1ull << 31;
constexpr uint64_t kMaxInstances = 4096;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  // Structured log in addition to the out-param: callers historically
  // swallow the error string, and a corrupt index file should be visible
  // in the service log either way.
  NC_SLOG_WARNING("index_io_error").Kv("what", message);
  return false;
}

// Reads a tag token and verifies it.
bool Expect(std::istream& is, const char* tag, std::string* error) {
  std::string token;
  if (!(is >> token) || token != tag) {
    return Fail(error, std::string("expected '") + tag + "', got '" + token + "'");
  }
  return true;
}

// Shared post-parse validation: cluster ids in range, assignments
// consistent, and every id stored in the per-cluster lists inside its id
// space — a well-checksummed but crafted file must not be able to plant
// ids that fault at query time. Run by both the v1 and v2 readers.
bool ValidateInstanceStructure(const ClusterIndex& index, std::string* error) {
  for (graph::NodeId v = 0; v < index.num_nodes(); ++v) {
    if (index.cluster_of(v) >= index.num_clusters()) {
      return Fail(error, "cluster id out of range");
    }
  }
  // Stamp array for TL uniqueness: TlList::Remove and the tombstone-skip
  // iteration assume at most one entry per (cluster, trajectory) — a
  // crafted file with duplicates would corrupt the live-entry accounting
  // after a dynamic update.
  constexpr uint32_t kNoCluster = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> tl_seen(index.num_sequences(), kNoCluster);
  for (uint32_t g = 0; g < index.num_clusters(); ++g) {
    const Cluster& c = index.cluster(g);
    if (c.center >= index.num_nodes() || index.cluster_of(c.center) != g) {
      return Fail(error, "center/assignment mismatch");
    }
    if (c.representative != tops::kInvalidSite &&
        c.representative >= index.num_site_slots()) {
      return Fail(error, "representative out of range");
    }
    for (const tops::SiteId s : c.sites) {
      if (s >= index.num_site_slots()) {
        return Fail(error, "site id out of range");
      }
    }
    for (const ClEntry& e : c.cl) {
      if (e.cluster >= index.num_clusters()) {
        return Fail(error, "cl cluster id out of range");
      }
    }
    for (const TlEntry& e : c.tl) {
      if (e.traj >= index.num_sequences()) {
        return Fail(error, "tl trajectory id out of range");
      }
      if (tl_seen[e.traj] == g) {
        return Fail(error, "duplicate trajectory id in tl list");
      }
      tl_seen[e.traj] = g;
    }
  }
  return true;
}

// Bounded reserve: trust `declared` only up to a small pre-allocation —
// containers then grow geometrically with actually-parsed data, so a
// corrupt count cannot allocate ahead of the stream (no resize bombs).
template <typename Vector>
void SafeReserve(Vector& v, uint64_t declared) {
  v.reserve(static_cast<size_t>(std::min<uint64_t>(declared, 1u << 16)));
}

}  // namespace

// ---------------------------------------------------------------------------
// ClusterIndex — v1 text
// ---------------------------------------------------------------------------

void ClusterIndex::WriteTo(std::ostream& os) const {
  os << std::setprecision(12);
  os << "instance\n";
  os << "config " << config_.radius_m << " " << config_.gamma << " "
     << static_cast<int>(config_.gdsp_strategy) << " " << config_.fm_copies
     << " " << static_cast<int>(config_.representative_rule) << "\n";
  os << "stats " << stats_.gdsp_seconds << " " << stats_.build_seconds << " "
     << stats_.mean_dominating_set_size << " " << stats_.mean_tl_size << " "
     << stats_.mean_cl_size << " " << stats_.compressed_postings << " "
     << stats_.raw_postings << "\n";

  os << "node_cluster " << node_cluster_.size();
  for (uint32_t g : node_cluster_) os << " " << g;
  os << "\nnode_rt " << node_rt_.size();
  for (float rt : node_rt_) os << " " << rt;
  os << "\nclusters " << clusters_.size() << "\n";
  for (const Cluster& c : clusters_) {
    os << "cluster " << c.center << " " << c.representative << " "
       << c.rep_rt_m << "\n";
    os << " sites " << c.sites.size();
    for (tops::SiteId s : c.sites) os << " " << s;
    // Live TL entries: frozen-minus-tombstones plus dynamic additions.
    os << "\n tl " << c.tl.size();
    for (const TlEntry& e : c.tl) os << " " << e.traj << " " << e.dr_m;
    os << "\n cl " << c.cl.size();
    for (const ClEntry& e : c.cl) os << " " << e.cluster << " " << e.dr_m;
    os << "\n";
  }
  os << "seqs " << cc_count_ << "\n";
  for (traj::TrajId t = 0; t < cc_count_; ++t) {
    const store::PostingListView seq = cluster_sequence_view(t);
    os << seq.size();
    for (uint32_t g : seq) os << " " << g;
    os << "\n";
  }
  os << "removed " << site_removed_.size();
  for (bool removed : site_removed_) os << " " << (removed ? 1 : 0);
  os << "\n";
}

bool ClusterIndex::ReadFrom(std::istream& is, ClusterIndex* out,
                            std::string* error) {
  ClusterIndex index;
  if (!Expect(is, "instance", error)) return false;
  if (!Expect(is, "config", error)) return false;
  int strategy = 0, rule = 0;
  if (!(is >> index.config_.radius_m >> index.config_.gamma >> strategy >>
        index.config_.fm_copies >> rule)) {
    return Fail(error, "bad config line");
  }
  index.config_.gdsp_strategy = static_cast<GdspStrategy>(strategy);
  index.config_.representative_rule = static_cast<RepresentativeRule>(rule);
  if (!Expect(is, "stats", error)) return false;
  if (!(is >> index.stats_.gdsp_seconds >> index.stats_.build_seconds >>
        index.stats_.mean_dominating_set_size >> index.stats_.mean_tl_size >>
        index.stats_.mean_cl_size >> index.stats_.compressed_postings >>
        index.stats_.raw_postings)) {
    return Fail(error, "bad stats line");
  }

  uint64_t count = 0;
  if (!Expect(is, "node_cluster", error) || !(is >> count) ||
      count > kMaxListLength) {
    return Fail(error, "bad node_cluster header");
  }
  SafeReserve(index.node_cluster_, count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t g = 0;
    if (!(is >> g)) return Fail(error, "truncated node_cluster");
    index.node_cluster_.push_back(g);
  }
  if (!Expect(is, "node_rt", error) || !(is >> count) ||
      count > kMaxListLength) {
    return Fail(error, "bad node_rt header");
  }
  SafeReserve(index.node_rt_, count);
  for (uint64_t i = 0; i < count; ++i) {
    float rt = 0.0f;
    if (!(is >> rt)) return Fail(error, "truncated node_rt");
    index.node_rt_.push_back(rt);
  }
  // Both per-node arrays span the same id space; a mismatch would leave
  // node_rt_ reads out of bounds for valid node ids after load.
  if (index.node_rt_.size() != index.node_cluster_.size()) {
    return Fail(error, "node_rt/node_cluster count mismatch");
  }

  if (!Expect(is, "clusters", error) || !(is >> count) ||
      count > kMaxListLength) {
    return Fail(error, "bad clusters header");
  }
  SafeReserve(index.clusters_, count);
  std::vector<std::vector<TlEntry>> tls;
  SafeReserve(tls, count);
  for (uint64_t g = 0; g < count; ++g) {
    Cluster& c = index.clusters_.emplace_back();
    std::vector<TlEntry>& tl = tls.emplace_back();
    if (!Expect(is, "cluster", error)) return false;
    if (!(is >> c.center >> c.representative >> c.rep_rt_m)) {
      return Fail(error, "bad cluster line");
    }
    uint64_t n = 0;
    if (!Expect(is, "sites", error) || !(is >> n) || n > kMaxListLength) {
      return Fail(error, "bad sites header");
    }
    SafeReserve(c.sites, n);
    for (uint64_t i = 0; i < n; ++i) {
      tops::SiteId s = 0;
      if (!(is >> s)) return Fail(error, "truncated sites");
      c.sites.push_back(s);
    }
    if (!Expect(is, "tl", error) || !(is >> n) || n > kMaxListLength) {
      return Fail(error, "bad tl header");
    }
    SafeReserve(tl, n);
    for (uint64_t i = 0; i < n; ++i) {
      TlEntry e{};
      if (!(is >> e.traj >> e.dr_m)) return Fail(error, "truncated tl");
      tl.push_back(e);
    }
    if (!Expect(is, "cl", error) || !(is >> n) || n > kMaxListLength) {
      return Fail(error, "bad cl header");
    }
    SafeReserve(c.cl, n);
    for (uint64_t i = 0; i < n; ++i) {
      ClEntry e{};
      if (!(is >> e.cluster >> e.dr_m)) return Fail(error, "truncated cl");
      c.cl.push_back(e);
    }
  }

  if (!Expect(is, "seqs", error) || !(is >> count) || count > kMaxListLength) {
    return Fail(error, "bad seqs header");
  }
  std::vector<std::vector<uint32_t>> seqs;
  SafeReserve(seqs, count);
  for (uint64_t si = 0; si < count; ++si) {
    std::vector<uint32_t>& seq = seqs.emplace_back();
    uint64_t len = 0;
    if (!(is >> len) || len > kMaxListLength) {
      return Fail(error, "truncated seqs");
    }
    SafeReserve(seq, len);
    for (uint64_t i = 0; i < len; ++i) {
      uint32_t g = 0;
      if (!(is >> g)) return Fail(error, "truncated seq entries");
      if (g >= index.clusters_.size()) {
        return Fail(error, "cluster id out of range in sequence");
      }
      seq.push_back(g);
    }
  }
  if (!Expect(is, "removed", error) || !(is >> count) ||
      count > kMaxListLength) {
    return Fail(error, "bad removed header");
  }
  SafeReserve(index.site_removed_, count);
  for (uint64_t i = 0; i < count; ++i) {
    int bit = 0;
    if (!(is >> bit)) return Fail(error, "truncated removed");
    index.site_removed_.push_back(bit != 0);
  }
  index.FreezePostings(tls, seqs);
  if (!ValidateInstanceStructure(index, error)) return false;
  *out = std::move(index);
  return true;
}

// ---------------------------------------------------------------------------
// ClusterIndex — v2 binary blob
//
// Layout (offsets relative to the blob start, arrays 8-aligned):
//   scalars: config + stats + counts (see WriteBinary)
//   array descriptor table: kNumArrays x {u64 offset, u64 bytes}
//   arrays, in descriptor order
// ---------------------------------------------------------------------------

namespace {

// Descriptor order of the per-instance arrays.
enum InstanceArray : size_t {
  kArrNodeCluster = 0,  // u32[num_nodes]
  kArrNodeRt,           // f32[num_nodes]
  kArrCenters,          // u32[num_clusters]
  kArrRepresentatives,  // u32[num_clusters]
  kArrRepRt,            // f32[num_clusters]
  kArrSitesOffsets,     // u64[num_clusters + 1]
  kArrSitesData,        // u32[total sites]
  kArrClOffsets,        // u64[num_clusters + 1]
  kArrClData,           // ClEntry[total cl]
  kArrTlOffsets,        // v2: u64[num_clusters + 1]; v3: Elias–Fano bytes
  kArrTlData,           // varint arena bytes (v2 flat / v3 blocked)
  kArrCcOffsets,        // v2: u64[num_seqs + 1]; v3: Elias–Fano bytes
  kArrCcData,           // varint arena bytes (v2 flat / v3 blocked)
  kArrSiteRemoved,      // u8[ceil(num_site_flags / 8)]
  kNumArrays,
};

static_assert(sizeof(ClEntry) == 8 && std::is_trivially_copyable_v<ClEntry>);

// Copies a POD array out of a (possibly unaligned) byte block.
template <typename T>
bool CopyArray(const store::ByteBlock& block, size_t expected_count,
               std::vector<T>* out, std::string* error, const char* what) {
  if (block.size() != expected_count * sizeof(T)) {
    return Fail(error, util::StrFormat("array '%s': %zu bytes, want %zu", what,
                                       block.size(),
                                       expected_count * sizeof(T)));
  }
  out->resize(expected_count);
  if (expected_count > 0) {
    std::memcpy(out->data(), block.data(), block.size());
  }
  return true;
}

}  // namespace

void ClusterIndex::WriteBinary(store::ByteWriter& out,
                               store::ListLayout layout) const {
  // Pristine instances (no Sec. 6 updates since freeze — the common
  // snapshot-shipping path) whose in-memory arenas already use the target
  // layout emit their frozen arena blocks verbatim. Otherwise
  // canonicalize: fold overlays/tombstones into fresh arenas in the
  // target layout, so the file holds exactly the live postings (this also
  // covers cross-version conversion, e.g. a v2-loaded flat index written
  // as v3 blocked). Encoding is deterministic, so both paths produce
  // identical bytes for identical live postings and layout.
  const bool pristine =
      cc_overlay_.empty() && cc_removed_.empty() &&
      cc_count_ == cc_arena_.num_lists() &&
      tl_arena_.layout() == layout && cc_arena_.layout() == layout &&
      std::all_of(clusters_.begin(), clusters_.end(),
                  [](const Cluster& c) { return !c.tl.has_overlay(); });
  store::PostingArena tl = tl_arena_;
  store::PostingArena cc = cc_arena_;
  if (!pristine) {
    store::PostingArenaBuilder tl_builder(layout);
    for (const Cluster& c : clusters_) {
      tl_builder.AddPairList(c.tl.Materialize());
    }
    tl = tl_builder.Finish();
    store::PostingArenaBuilder cc_builder(layout);
    for (traj::TrajId t = 0; t < cc_count_; ++t) {
      cc_builder.AddU32List(cluster_sequence(t));
    }
    cc = cc_builder.Finish();
  }

  out.F64(config_.radius_m);
  out.F64(config_.gamma);
  out.U32(static_cast<uint32_t>(config_.gdsp_strategy));
  out.U32(config_.fm_copies);
  out.U32(static_cast<uint32_t>(config_.representative_rule));
  out.U32(0);  // pad
  out.F64(stats_.gdsp_seconds);
  out.F64(stats_.build_seconds);
  out.F64(stats_.mean_dominating_set_size);
  out.F64(stats_.mean_tl_size);
  out.F64(stats_.mean_cl_size);
  out.U64(stats_.compressed_postings);
  out.U64(stats_.raw_postings);
  out.U64(node_cluster_.size());
  out.U64(clusters_.size());
  out.U64(cc_count_);
  out.U64(site_removed_.size());

  const size_t table_pos = out.Reserve(kNumArrays * 2 * sizeof(uint64_t));
  size_t next = 0;
  auto put_array = [&](const void* data, size_t bytes) {
    out.Align8();
    out.PatchU64(table_pos + next * 2 * sizeof(uint64_t), out.size());
    out.PatchU64(table_pos + (next * 2 + 1) * sizeof(uint64_t), bytes);
    out.Bytes(data, bytes);
    ++next;
  };

  put_array(node_cluster_.data(), node_cluster_.size() * sizeof(uint32_t));
  put_array(node_rt_.data(), node_rt_.size() * sizeof(float));

  std::vector<uint32_t> centers(clusters_.size()), reps(clusters_.size());
  std::vector<float> rep_rt(clusters_.size());
  std::vector<uint64_t> sites_offsets(clusters_.size() + 1, 0);
  std::vector<uint32_t> sites_data;
  std::vector<uint64_t> cl_offsets(clusters_.size() + 1, 0);
  std::vector<ClEntry> cl_data;
  for (size_t g = 0; g < clusters_.size(); ++g) {
    const Cluster& c = clusters_[g];
    centers[g] = c.center;
    reps[g] = c.representative;
    rep_rt[g] = c.rep_rt_m;
    sites_data.insert(sites_data.end(), c.sites.begin(), c.sites.end());
    sites_offsets[g + 1] = sites_data.size();
    cl_data.insert(cl_data.end(), c.cl.begin(), c.cl.end());
    cl_offsets[g + 1] = cl_data.size();
  }
  put_array(centers.data(), centers.size() * sizeof(uint32_t));
  put_array(reps.data(), reps.size() * sizeof(uint32_t));
  put_array(rep_rt.data(), rep_rt.size() * sizeof(float));
  put_array(sites_offsets.data(), sites_offsets.size() * sizeof(uint64_t));
  put_array(sites_data.data(), sites_data.size() * sizeof(uint32_t));
  put_array(cl_offsets.data(), cl_offsets.size() * sizeof(uint64_t));
  put_array(cl_data.data(), cl_data.size() * sizeof(ClEntry));

  put_array(tl.offsets_block().data(), tl.offsets_block().size());
  put_array(tl.data_block().data(), tl.data_block().size());
  put_array(cc.offsets_block().data(), cc.offsets_block().size());
  put_array(cc.data_block().data(), cc.data_block().size());

  std::vector<uint8_t> removed_bits((site_removed_.size() + 7) / 8, 0);
  for (size_t i = 0; i < site_removed_.size(); ++i) {
    if (site_removed_[i]) removed_bits[i / 8] |= 1u << (i % 8);
  }
  put_array(removed_bits.data(), removed_bits.size());
}

bool ClusterIndex::ReadBinary(store::ByteReader& in, store::ListLayout layout,
                              ClusterIndex* out, std::string* error) {
  ClusterIndex index;
  index.config_.radius_m = in.F64();
  index.config_.gamma = in.F64();
  index.config_.gdsp_strategy = static_cast<GdspStrategy>(in.U32());
  index.config_.fm_copies = in.U32();
  index.config_.representative_rule = static_cast<RepresentativeRule>(in.U32());
  in.U32();  // pad
  index.stats_.gdsp_seconds = in.F64();
  index.stats_.build_seconds = in.F64();
  index.stats_.mean_dominating_set_size = in.F64();
  index.stats_.mean_tl_size = in.F64();
  index.stats_.mean_cl_size = in.F64();
  index.stats_.compressed_postings = in.U64();
  index.stats_.raw_postings = in.U64();
  const uint64_t num_nodes = in.U64();
  const uint64_t num_clusters = in.U64();
  const uint64_t num_seqs = in.U64();
  const uint64_t num_site_flags = in.U64();
  if (!in.ok() || num_nodes > kMaxListLength ||
      num_clusters > kMaxListLength || num_seqs > kMaxListLength ||
      num_site_flags > kMaxListLength) {
    return Fail(error, "instance blob: bad scalar header");
  }

  struct Descriptor {
    uint64_t offset = 0;
    uint64_t bytes = 0;
  };
  Descriptor table[kNumArrays];
  for (auto& d : table) {
    d.offset = in.U64();
    d.bytes = in.U64();
  }
  if (!in.ok()) return Fail(error, "instance blob: truncated array table");
  store::ByteBlock arrays[kNumArrays];
  for (size_t i = 0; i < kNumArrays; ++i) {
    arrays[i] = in.SubBlock(table[i].offset, table[i].bytes);
    if (!in.ok()) {
      return Fail(error,
                  util::StrFormat("instance blob: array %zu out of bounds", i));
    }
  }

  if (!CopyArray(arrays[kArrNodeCluster], num_nodes, &index.node_cluster_,
                 error, "node_cluster") ||
      !CopyArray(arrays[kArrNodeRt], num_nodes, &index.node_rt_, error,
                 "node_rt")) {
    return false;
  }
  std::vector<uint32_t> centers, reps, sites_data;
  std::vector<float> rep_rt;
  std::vector<uint64_t> sites_offsets, cl_offsets;
  std::vector<ClEntry> cl_data;
  if (!CopyArray(arrays[kArrCenters], num_clusters, &centers, error,
                 "centers") ||
      !CopyArray(arrays[kArrRepresentatives], num_clusters, &reps, error,
                 "representatives") ||
      !CopyArray(arrays[kArrRepRt], num_clusters, &rep_rt, error, "rep_rt") ||
      !CopyArray(arrays[kArrSitesOffsets], num_clusters + 1, &sites_offsets,
                 error, "sites_offsets") ||
      !CopyArray(arrays[kArrClOffsets], num_clusters + 1, &cl_offsets, error,
                 "cl_offsets")) {
    return false;
  }
  const uint64_t total_sites = sites_offsets.back();
  const uint64_t total_cl = cl_offsets.back();
  if (total_sites > kMaxListLength || total_cl > kMaxListLength) {
    return Fail(error, "instance blob: implausible list totals");
  }
  if (!CopyArray(arrays[kArrSitesData], total_sites, &sites_data, error,
                 "sites_data") ||
      !CopyArray(arrays[kArrClData], total_cl, &cl_data, error, "cl_data")) {
    return false;
  }
  for (size_t g = 0; g < num_clusters; ++g) {
    if (sites_offsets[g] > sites_offsets[g + 1] ||
        cl_offsets[g] > cl_offsets[g + 1]) {
      return Fail(error, "instance blob: non-monotonic offsets");
    }
  }

  // Posting arenas alias the file block zero-copy; FromBlocks validates
  // every varint stream before anything trusts them.
  if (!store::PostingArena::FromBlocks(
          arrays[kArrTlData], arrays[kArrTlOffsets], num_clusters,
          store::ListKind::kPair, layout, &index.tl_arena_, error) ||
      !store::PostingArena::FromBlocks(
          arrays[kArrCcData], arrays[kArrCcOffsets], num_seqs,
          store::ListKind::kU32, layout, &index.cc_arena_, error)) {
    return false;
  }
  index.cc_count_ = num_seqs;

  index.clusters_.resize(num_clusters);
  for (size_t g = 0; g < num_clusters; ++g) {
    Cluster& c = index.clusters_[g];
    c.center = centers[g];
    c.representative = reps[g];
    c.rep_rt_m = rep_rt[g];
    c.sites.assign(sites_data.begin() + sites_offsets[g],
                   sites_data.begin() + sites_offsets[g + 1]);
    c.cl.assign(cl_data.begin() + cl_offsets[g],
                cl_data.begin() + cl_offsets[g + 1]);
    c.tl.Freeze(index.tl_arena_.PairList<TlEntry>(g));
  }

  const store::ByteBlock& removed = arrays[kArrSiteRemoved];
  if (removed.size() != (num_site_flags + 7) / 8) {
    return Fail(error, "instance blob: bad site_removed bitmap");
  }
  index.site_removed_.resize(num_site_flags);
  for (size_t i = 0; i < num_site_flags; ++i) {
    index.site_removed_[i] = (removed.data()[i / 8] >> (i % 8)) & 1;
  }

  // CC entries must reference clusters of this instance.
  for (traj::TrajId t = 0; t < index.cc_count_; ++t) {
    for (const uint32_t g : index.cluster_sequence_view(t)) {
      if (g >= num_clusters) {
        return Fail(error, "cluster id out of range in sequence");
      }
    }
  }
  if (!ValidateInstanceStructure(index, error)) return false;
  *out = std::move(index);
  return true;
}

// ---------------------------------------------------------------------------
// MultiIndex — v1 text
// ---------------------------------------------------------------------------

void WriteIndex(const MultiIndex& index, std::ostream& os) {
  WriteIndex(index, nullptr, os);
}

void WriteIndex(const MultiIndex& index,
                const graph::spf::DistanceBackend* backend, std::ostream& os) {
  os << std::setprecision(12);
  os << "netclus-index v1\n";
  os << "meta " << index.config_.gamma << " " << index.tau_min_ << " "
     << index.tau_max_ << " " << index.build_seconds_ << " "
     << index.instances_.size() << "\n";
  size_t nodes = 0;
  size_t trajs = 0;
  if (!index.instances_.empty()) {
    nodes = index.instances_[0]->num_nodes();
    trajs = index.instances_[0]->num_sequences();
  }
  os << "corpus " << nodes << " " << trajs << "\n";
  for (const auto& instance : index.instances_) instance->WriteTo(os);
  if (backend != nullptr) {
    os << "backend " << graph::spf::BackendName(backend->kind()) << "\n";
    if (backend->kind() == graph::spf::BackendKind::kContractionHierarchies) {
      static_cast<const graph::spf::ContractionHierarchy*>(backend)->WriteTo(
          os);
    }
  }
  os << "end\n";
}

bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error) {
  return ReadIndex(is, expected_nodes, expected_trajectories, index, error,
                   nullptr, nullptr);
}

bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend) {
  std::string header;
  std::getline(is, header);
  if (util::Trim(header) != "netclus-index v1") {
    return Fail(error, "missing/unknown index header");
  }
  MultiIndex loaded;
  uint64_t instances = 0;
  if (!Expect(is, "meta", error)) return false;
  if (!(is >> loaded.config_.gamma >> loaded.tau_min_ >> loaded.tau_max_ >>
        loaded.build_seconds_ >> instances)) {
    return Fail(error, "bad meta line");
  }
  if (instances > kMaxInstances) {
    return Fail(error, "implausible instance count");
  }
  size_t nodes = 0, trajs = 0;
  if (!Expect(is, "corpus", error) || !(is >> nodes >> trajs)) {
    return Fail(error, "bad corpus line");
  }
  if (nodes != expected_nodes) {
    return Fail(error,
                util::StrFormat("index built over %zu nodes, corpus has %zu",
                                nodes, expected_nodes));
  }
  if (trajs > expected_trajectories) {
    return Fail(error, util::StrFormat(
                           "index references %zu trajectories, corpus has %zu",
                           trajs, expected_trajectories));
  }
  for (size_t p = 0; p < instances; ++p) {
    auto instance = std::make_unique<ClusterIndex>();
    if (!ClusterIndex::ReadFrom(is, instance.get(), error)) return false;
    // Every instance must span the live corpus: the query engine indexes
    // per-node and per-trajectory arrays by live ids, so an instance with
    // its own (file-controlled) smaller id space would read out of bounds
    // at query time.
    if (instance->num_nodes() != expected_nodes) {
      return Fail(error, "instance node count mismatch");
    }
    if (instance->num_sequences() > expected_trajectories) {
      return Fail(error, "instance trajectory count mismatch");
    }
    loaded.instances_.push_back(std::move(instance));
  }
  std::string tail;
  if (!(is >> tail)) return Fail(error, "truncated index (missing end)");
  if (tail == "backend") {
    std::string name;
    if (!(is >> name)) return Fail(error, "truncated backend section");
    const std::optional<graph::spf::BackendKind> kind =
        graph::spf::ParseBackendName(name);
    if (!kind.has_value()) return Fail(error, "unknown backend: " + name);
    if (*kind == graph::spf::BackendKind::kContractionHierarchies) {
      if (net == nullptr || backend == nullptr) {
        // Caller has no network to validate against: skip reconstruction
        // but still consume the payload so "end" parses.
        std::string token;
        while (is >> token && token != "end_ch") {
        }
        if (token != "end_ch") return Fail(error, "truncated ch payload");
      } else {
        std::unique_ptr<graph::spf::ContractionHierarchy> ch;
        if (!graph::spf::ContractionHierarchy::ReadFrom(is, net, &ch, error)) {
          return false;
        }
        *backend = std::move(ch);
      }
    } else if (net != nullptr && backend != nullptr) {
      *backend = graph::spf::MakeBackend(*kind, net);
    }
    if (!Expect(is, "end", error)) return false;
  } else if (tail != "end") {
    return Fail(error, "expected 'end', got '" + tail + "'");
  }
  *index = std::move(loaded);
  return true;
}

// ---------------------------------------------------------------------------
// MultiIndex — v2 binary
//
// File layout (all little-endian; see docs/index_format.md):
//   header  : magic "NCIXBIN2", endian probe, version, file size,
//             section-table offset, section count
//   sections: 8-aligned payloads (meta, one per instance, optional
//             backend)
//   table   : per-section {kind, offset, bytes, FNV-1a checksum}
// ---------------------------------------------------------------------------

namespace {

constexpr char kV2Magic[8] = {'N', 'C', 'I', 'X', 'B', 'I', 'N', '2'};
constexpr char kV3Magic[8] = {'N', 'C', 'I', 'X', 'B', 'I', 'N', '3'};
constexpr uint32_t kEndianProbe = 0x01020304;
constexpr uint32_t kV2Version = 2;
constexpr uint32_t kV3Version = 3;

// The arena wire layout is the only difference between the v2 and v3
// containers: v2 files hold flat varint streams with plain u64 offset
// tables, v3 files hold 128-entry blocked streams with Elias–Fano offsets.
store::ListLayout LayoutForVersion(uint32_t version) {
  return version >= kV3Version ? store::ListLayout::kBlocked
                               : store::ListLayout::kFlat;
}

enum SectionKind : uint32_t {
  kSectionMeta = 1,
  kSectionInstance = 2,
  kSectionBackend = 3,
};

struct Section {
  uint32_t kind = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

}  // namespace

bool IsV2IndexImage(const uint8_t* data, size_t size) {
  return size >= sizeof(kV2Magic) &&
         std::memcmp(data, kV2Magic, sizeof(kV2Magic)) == 0;
}

bool IsBinaryIndexImage(const uint8_t* data, size_t size) {
  return IsV2IndexImage(data, size) ||
         (size >= sizeof(kV3Magic) &&
          std::memcmp(data, kV3Magic, sizeof(kV3Magic)) == 0);
}

namespace {

// Produces the v2 sections one at a time through `emit(kind, payload)`,
// so the streaming writer below holds at most one section's bytes in
// memory at once (the whole-image transient of a country-scale index
// would rival the index itself). Uses only the public MultiIndex API.
template <typename Emit>
void ForEachV2Section(const MultiIndex& index,
                      const graph::spf::DistanceBackend* backend,
                      store::ListLayout layout, Emit&& emit) {
  {
    store::ByteWriter meta;
    meta.F64(index.gamma());
    meta.F64(index.tau_min_m());
    meta.F64(index.tau_max_m());
    meta.F64(index.build_seconds());
    meta.U64(index.num_instances());
    size_t nodes = 0, trajs = 0;
    if (index.num_instances() > 0) {
      nodes = index.instance(0).num_nodes();
      trajs = index.instance(0).num_sequences();
    }
    meta.U64(nodes);
    meta.U64(trajs);
    emit(kSectionMeta, meta.TakeBytes());
  }
  for (size_t p = 0; p < index.num_instances(); ++p) {
    store::ByteWriter blob;
    index.instance(p).WriteBinary(blob, layout);
    emit(kSectionInstance, blob.TakeBytes());
  }
  if (backend != nullptr) {
    store::ByteWriter b;
    const std::string name = graph::spf::BackendName(backend->kind());
    b.U32(static_cast<uint32_t>(name.size()));
    b.Bytes(name.data(), name.size());
    std::string payload;
    if (backend->kind() == graph::spf::BackendKind::kContractionHierarchies) {
      std::ostringstream ch_text;
      static_cast<const graph::spf::ContractionHierarchy*>(backend)->WriteTo(
          ch_text);
      payload = std::move(ch_text).str();
    }
    b.U64(payload.size());
    b.Bytes(payload.data(), payload.size());
    emit(kSectionBackend, b.TakeBytes());
  }
}

}  // namespace

namespace {

void WriteIndexBinary(const MultiIndex& index,
                      const graph::spf::DistanceBackend* backend,
                      uint32_t version, std::ostream& os) {
  auto put_u32 = [&os](uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put_u64 = [&os](uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  os.write(version >= kV3Version ? kV3Magic : kV2Magic, sizeof(kV2Magic));
  put_u32(kEndianProbe);
  put_u32(version);
  const std::streampos file_size_pos = os.tellp();
  put_u64(0);  // file size, patched below
  const std::streampos table_offset_pos = os.tellp();
  put_u64(0);  // section-table offset, patched below
  const uint32_t section_count = static_cast<uint32_t>(
      1 + index.num_instances() + (backend != nullptr ? 1 : 0));
  put_u32(section_count);
  put_u32(0);  // pad

  uint64_t pos = 40;  // bytes written so far (the fixed header)
  std::vector<Section> sections;
  auto align8 = [&] {
    while (pos % 8 != 0) {
      os.put(0);
      ++pos;
    }
  };
  ForEachV2Section(index, backend, LayoutForVersion(version),
                   [&](uint32_t kind, std::vector<uint8_t> payload) {
                     align8();
                     Section s;
                     s.kind = kind;
                     s.offset = pos;
                     s.bytes = payload.size();
                     s.checksum =
                         store::Fnv1a64(payload.data(), payload.size());
                     os.write(reinterpret_cast<const char*>(payload.data()),
                              static_cast<std::streamsize>(payload.size()));
                     pos += payload.size();
                     sections.push_back(s);
                   });

  align8();
  const uint64_t table_offset = pos;
  for (const Section& s : sections) {
    put_u32(s.kind);
    put_u32(0);
    put_u64(s.offset);
    put_u64(s.bytes);
    put_u64(s.checksum);
    pos += 32;
  }
  os.seekp(file_size_pos);
  put_u64(pos);
  os.seekp(table_offset_pos);
  put_u64(table_offset);
  os.seekp(0, std::ios::end);
}

}  // namespace

void WriteIndexV2(const MultiIndex& index,
                  const graph::spf::DistanceBackend* backend,
                  std::ostream& os) {
  WriteIndexBinary(index, backend, kV2Version, os);
}

void WriteIndexV3(const MultiIndex& index,
                  const graph::spf::DistanceBackend* backend,
                  std::ostream& os) {
  WriteIndexBinary(index, backend, kV3Version, os);
}

std::vector<uint8_t> EncodeIndexV2(const MultiIndex& index,
                                   const graph::spf::DistanceBackend* backend) {
  std::ostringstream buffer;
  WriteIndexV2(index, backend, buffer);
  const std::string bytes = std::move(buffer).str();
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

std::vector<uint8_t> EncodeIndexV3(const MultiIndex& index,
                                   const graph::spf::DistanceBackend* backend) {
  std::ostringstream buffer;
  WriteIndexV3(index, backend, buffer);
  const std::string bytes = std::move(buffer).str();
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

bool ReadIndexV2(store::ByteBlock block, size_t expected_nodes,
                 size_t expected_trajectories, MultiIndex* index,
                 std::string* error, const graph::RoadNetwork* net,
                 std::shared_ptr<const graph::spf::DistanceBackend>* backend) {
  store::ByteReader header(block);
  char magic[sizeof(kV2Magic)] = {};
  if (!header.Bytes(magic, sizeof(magic)) ||
      !IsBinaryIndexImage(reinterpret_cast<const uint8_t*>(magic),
                          sizeof(magic))) {
    return Fail(error, "missing/unknown binary index magic");
  }
  const uint32_t magic_version =
      std::memcmp(magic, kV3Magic, sizeof(magic)) == 0 ? kV3Version
                                                       : kV2Version;
  if (header.U32() != kEndianProbe) {
    return Fail(error, "endianness mismatch or corrupt header");
  }
  // The version field must agree with the magic — a mismatch means a
  // corrupt or hand-edited header, not a future format.
  if (header.U32() != magic_version) {
    return Fail(error, "unsupported index format version");
  }
  const store::ListLayout layout = LayoutForVersion(magic_version);
  const uint64_t file_size = header.U64();
  const uint64_t table_offset = header.U64();
  const uint32_t section_count = header.U32();
  header.U32();  // pad
  if (!header.ok() || file_size != block.size()) {
    return Fail(error, "truncated index file (size mismatch)");
  }
  if (section_count > kMaxInstances + 2) {
    return Fail(error, "implausible section count");
  }
  constexpr size_t kSectionEntryBytes = 32;
  store::ByteReader table(header.SubBlock(
      table_offset, static_cast<uint64_t>(section_count) * kSectionEntryBytes));
  if (!header.ok()) return Fail(error, "section table out of bounds");

  std::vector<Section> sections(section_count);
  for (Section& s : sections) {
    s.kind = table.U32();
    table.U32();  // pad
    s.offset = table.U64();
    s.bytes = table.U64();
    s.checksum = table.U64();
  }
  if (!table.ok()) return Fail(error, "truncated section table");
  for (const Section& s : sections) {
    if (s.offset > block.size() || s.bytes > block.size() - s.offset) {
      return Fail(error, "section out of bounds");
    }
    if (store::Fnv1a64(block.data() + s.offset, s.bytes) != s.checksum) {
      return Fail(error, util::StrFormat(
                             "checksum mismatch in section kind %u (corrupt "
                             "or truncated file)",
                             s.kind));
    }
  }

  MultiIndex loaded;
  size_t nodes = 0, trajs = 0;
  uint64_t declared_instances = 0;
  bool saw_meta = false;
  for (const Section& s : sections) {
    store::ByteReader r(block.Slice(s.offset, s.bytes));
    switch (s.kind) {
      case kSectionMeta: {
        loaded.config_.gamma = r.F64();
        loaded.tau_min_ = r.F64();
        loaded.tau_max_ = r.F64();
        loaded.build_seconds_ = r.F64();
        declared_instances = r.U64();
        nodes = r.U64();
        trajs = r.U64();
        if (!r.ok()) return Fail(error, "bad meta section");
        if (nodes != expected_nodes) {
          return Fail(error, util::StrFormat(
                                 "index built over %zu nodes, corpus has %zu",
                                 nodes, expected_nodes));
        }
        if (trajs > expected_trajectories) {
          return Fail(error,
                      util::StrFormat(
                          "index references %zu trajectories, corpus has %zu",
                          trajs, expected_trajectories));
        }
        saw_meta = true;
        break;
      }
      case kSectionInstance: {
        auto instance = std::make_unique<ClusterIndex>();
        if (!ClusterIndex::ReadBinary(r, layout, instance.get(), error)) {
          return false;
        }
        // Cross-check the blob's self-declared id spaces against the live
        // corpus (not just the meta section): ids validated only against
        // file-controlled sizes would still index live-sized arrays out
        // of bounds at query time.
        if (instance->num_nodes() != expected_nodes) {
          return Fail(error, "instance node count mismatch");
        }
        if (instance->num_sequences() > expected_trajectories) {
          return Fail(error, "instance trajectory count mismatch");
        }
        loaded.instances_.push_back(std::move(instance));
        break;
      }
      case kSectionBackend: {
        const uint32_t name_len = r.U32();
        if (!r.ok() || name_len > 64) {
          return Fail(error, "bad backend section");
        }
        std::string name(name_len, '\0');
        if (!r.Bytes(name.data(), name_len)) {
          return Fail(error, "truncated backend name");
        }
        const uint64_t payload_len = r.U64();
        if (!r.ok() || payload_len > r.remaining()) {
          return Fail(error, "truncated backend payload");
        }
        const std::optional<graph::spf::BackendKind> kind =
            graph::spf::ParseBackendName(name);
        if (!kind.has_value()) return Fail(error, "unknown backend: " + name);
        if (net == nullptr || backend == nullptr) break;  // caller opted out
        if (*kind == graph::spf::BackendKind::kContractionHierarchies) {
          std::string payload(static_cast<size_t>(payload_len), '\0');
          r.Bytes(payload.data(), payload.size());
          std::istringstream ch_text(std::move(payload));
          std::unique_ptr<graph::spf::ContractionHierarchy> ch;
          if (!graph::spf::ContractionHierarchy::ReadFrom(ch_text, net, &ch,
                                                          error)) {
            return false;
          }
          *backend = std::move(ch);
        } else {
          *backend = graph::spf::MakeBackend(*kind, net);
        }
        break;
      }
      default:
        return Fail(error,
                    util::StrFormat("unknown section kind %u", s.kind));
    }
  }
  if (!saw_meta) return Fail(error, "missing meta section");
  if (loaded.instances_.size() != declared_instances) {
    return Fail(error, "instance count mismatch");
  }
  *index = std::move(loaded);
  return true;
}

// ---------------------------------------------------------------------------
// File wrappers
// ---------------------------------------------------------------------------

bool SaveIndex(const MultiIndex& index, const std::string& path,
               std::string* error, IndexFileFormat format) {
  return SaveIndex(index, nullptr, path, error, format);
}

bool SaveIndex(const MultiIndex& index,
               const graph::spf::DistanceBackend* backend,
               const std::string& path, std::string* error,
               IndexFileFormat format) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Fail(error, "cannot open for write: " + path);
  if (format == IndexFileFormat::kTextV1) {
    WriteIndex(index, backend, out);
  } else if (format == IndexFileFormat::kBinaryV2) {
    WriteIndexV2(index, backend, out);  // streams section by section
  } else {
    WriteIndexV3(index, backend, out);  // streams section by section
  }
  if (!out) return Fail(error, "write failed: " + path);
  return true;
}

bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error) {
  return LoadIndex(path, expected_nodes, expected_trajectories, index, error,
                   nullptr, nullptr, IndexLoadMode::kAuto);
}

bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend,
               IndexLoadMode mode) {
  // Sniff the magic so all formats load through one entry point.
  char magic[sizeof(kV2Magic)] = {};
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Fail(error, "cannot open for read: " + path);
    probe.read(magic, sizeof(magic));
    if (probe.gcount() < static_cast<std::streamsize>(sizeof(magic)) ||
        !IsBinaryIndexImage(reinterpret_cast<const uint8_t*>(magic),
                            sizeof(magic))) {
      std::ifstream in(path);
      if (!in) return Fail(error, "cannot open for read: " + path);
      return ReadIndex(in, expected_nodes, expected_trajectories, index, error,
                       net, backend);
    }
  }

  bool use_mmap = mode == IndexLoadMode::kMmap;
  if (mode == IndexLoadMode::kAuto) {
    use_mmap = util::GetEnvInt("NETCLUS_INDEX_MMAP", 1) != 0;
  }
  store::ByteBlock block;
  store::BufferPool* pool = nullptr;
  if (use_mmap) {
    std::string mmap_error;
    // NETCLUS_PAGE_BUDGET caps mapping residency (buffer_pool.h); the
    // pool is owned by the MappedFile, which the arenas keep alive.
    if (auto mapped = store::MappedFile::Open(
            path, &mmap_error, store::BufferPool::BudgetFromEnv())) {
      pool = mapped->pool();
      block = store::MappedFile::Block(std::move(mapped));
    } else if (mode == IndexLoadMode::kMmap) {
      return Fail(error, mmap_error);
    }
  }
  if (block.empty()) {
    block = store::ReadFileBlock(path, error);
    if (block.empty()) return false;
  }
  if (!ReadIndexV2(std::move(block), expected_nodes, expected_trajectories,
                   index, error, net, backend)) {
    return false;
  }
  // Load-time validation touched (and its page faults made resident) the
  // whole mapping; evict back to a cold state so serving starts within
  // the page budget rather than at whatever validation left resident.
  if (pool != nullptr) pool->DropAll();
  return true;
}

}  // namespace netclus::index
