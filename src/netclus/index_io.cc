#include "netclus/index_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/spf/contraction_hierarchy.h"
#include "netclus/cluster_index.h"
#include "util/strings.h"

namespace netclus::index {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Reads a tag token and verifies it.
bool Expect(std::istream& is, const char* tag, std::string* error) {
  std::string token;
  if (!(is >> token) || token != tag) {
    return Fail(error, std::string("expected '") + tag + "', got '" + token + "'");
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ClusterIndex
// ---------------------------------------------------------------------------

void ClusterIndex::WriteTo(std::ostream& os) const {
  os << std::setprecision(12);
  os << "instance\n";
  os << "config " << config_.radius_m << " " << config_.gamma << " "
     << static_cast<int>(config_.gdsp_strategy) << " " << config_.fm_copies
     << " " << static_cast<int>(config_.representative_rule) << "\n";
  os << "stats " << stats_.gdsp_seconds << " " << stats_.build_seconds << " "
     << stats_.mean_dominating_set_size << " " << stats_.mean_tl_size << " "
     << stats_.mean_cl_size << " " << stats_.compressed_postings << " "
     << stats_.raw_postings << "\n";

  os << "node_cluster " << node_cluster_.size();
  for (uint32_t g : node_cluster_) os << " " << g;
  os << "\nnode_rt " << node_rt_.size();
  for (float rt : node_rt_) os << " " << rt;
  os << "\nclusters " << clusters_.size() << "\n";
  for (const Cluster& c : clusters_) {
    os << "cluster " << c.center << " " << c.representative << " "
       << c.rep_rt_m << "\n";
    os << " sites " << c.sites.size();
    for (tops::SiteId s : c.sites) os << " " << s;
    os << "\n tl " << c.tl.size();
    for (const TlEntry& e : c.tl) os << " " << e.traj << " " << e.dr_m;
    os << "\n cl " << c.cl.size();
    for (const ClEntry& e : c.cl) os << " " << e.cluster << " " << e.dr_m;
    os << "\n";
  }
  os << "seqs " << cluster_seq_.size() << "\n";
  for (const auto& seq : cluster_seq_) {
    os << seq.size();
    for (uint32_t g : seq) os << " " << g;
    os << "\n";
  }
  os << "removed " << site_removed_.size();
  for (bool removed : site_removed_) os << " " << (removed ? 1 : 0);
  os << "\n";
}

bool ClusterIndex::ReadFrom(std::istream& is, ClusterIndex* out,
                            std::string* error) {
  ClusterIndex index;
  if (!Expect(is, "instance", error)) return false;
  if (!Expect(is, "config", error)) return false;
  int strategy = 0, rule = 0;
  if (!(is >> index.config_.radius_m >> index.config_.gamma >> strategy >>
        index.config_.fm_copies >> rule)) {
    return Fail(error, "bad config line");
  }
  index.config_.gdsp_strategy = static_cast<GdspStrategy>(strategy);
  index.config_.representative_rule = static_cast<RepresentativeRule>(rule);
  if (!Expect(is, "stats", error)) return false;
  if (!(is >> index.stats_.gdsp_seconds >> index.stats_.build_seconds >>
        index.stats_.mean_dominating_set_size >> index.stats_.mean_tl_size >>
        index.stats_.mean_cl_size >> index.stats_.compressed_postings >>
        index.stats_.raw_postings)) {
    return Fail(error, "bad stats line");
  }

  size_t count = 0;
  if (!Expect(is, "node_cluster", error) || !(is >> count)) {
    return Fail(error, "bad node_cluster header");
  }
  index.node_cluster_.resize(count);
  for (auto& g : index.node_cluster_) {
    if (!(is >> g)) return Fail(error, "truncated node_cluster");
  }
  if (!Expect(is, "node_rt", error) || !(is >> count)) {
    return Fail(error, "bad node_rt header");
  }
  index.node_rt_.resize(count);
  for (auto& rt : index.node_rt_) {
    if (!(is >> rt)) return Fail(error, "truncated node_rt");
  }

  if (!Expect(is, "clusters", error) || !(is >> count)) {
    return Fail(error, "bad clusters header");
  }
  index.clusters_.resize(count);
  for (Cluster& c : index.clusters_) {
    if (!Expect(is, "cluster", error)) return false;
    if (!(is >> c.center >> c.representative >> c.rep_rt_m)) {
      return Fail(error, "bad cluster line");
    }
    size_t n = 0;
    if (!Expect(is, "sites", error) || !(is >> n)) return false;
    c.sites.resize(n);
    for (auto& s : c.sites) {
      if (!(is >> s)) return Fail(error, "truncated sites");
    }
    if (!Expect(is, "tl", error) || !(is >> n)) return false;
    c.tl.resize(n);
    for (auto& e : c.tl) {
      if (!(is >> e.traj >> e.dr_m)) return Fail(error, "truncated tl");
    }
    if (!Expect(is, "cl", error) || !(is >> n)) return false;
    c.cl.resize(n);
    for (auto& e : c.cl) {
      if (!(is >> e.cluster >> e.dr_m)) return Fail(error, "truncated cl");
    }
  }

  if (!Expect(is, "seqs", error) || !(is >> count)) {
    return Fail(error, "bad seqs header");
  }
  index.cluster_seq_.resize(count);
  for (auto& seq : index.cluster_seq_) {
    size_t len = 0;
    if (!(is >> len)) return Fail(error, "truncated seqs");
    seq.resize(len);
    for (auto& g : seq) {
      if (!(is >> g)) return Fail(error, "truncated seq entries");
    }
  }
  if (!Expect(is, "removed", error) || !(is >> count)) {
    return Fail(error, "bad removed header");
  }
  index.site_removed_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    int bit = 0;
    if (!(is >> bit)) return Fail(error, "truncated removed");
    index.site_removed_[i] = bit != 0;
  }
  // Structural validation: cluster ids in range, assignments consistent.
  for (uint32_t g : index.node_cluster_) {
    if (g >= index.clusters_.size()) return Fail(error, "cluster id out of range");
  }
  for (uint32_t g = 0; g < index.clusters_.size(); ++g) {
    const graph::NodeId center = index.clusters_[g].center;
    if (center >= index.node_cluster_.size() ||
        index.node_cluster_[center] != g) {
      return Fail(error, "center/assignment mismatch");
    }
  }
  *out = std::move(index);
  return true;
}

// ---------------------------------------------------------------------------
// MultiIndex
// ---------------------------------------------------------------------------

void WriteIndex(const MultiIndex& index, std::ostream& os) {
  WriteIndex(index, nullptr, os);
}

void WriteIndex(const MultiIndex& index,
                const graph::spf::DistanceBackend* backend, std::ostream& os) {
  os << std::setprecision(12);
  os << "netclus-index v1\n";
  os << "meta " << index.config_.gamma << " " << index.tau_min_ << " "
     << index.tau_max_ << " " << index.build_seconds_ << " "
     << index.instances_.size() << "\n";
  size_t nodes = 0;
  size_t trajs = 0;
  if (!index.instances_.empty()) {
    nodes = index.instances_[0]->num_nodes();
    trajs = index.instances_[0]->num_sequences();
  }
  os << "corpus " << nodes << " " << trajs << "\n";
  for (const auto& instance : index.instances_) instance->WriteTo(os);
  if (backend != nullptr) {
    os << "backend " << graph::spf::BackendName(backend->kind()) << "\n";
    if (backend->kind() == graph::spf::BackendKind::kContractionHierarchies) {
      static_cast<const graph::spf::ContractionHierarchy*>(backend)->WriteTo(
          os);
    }
  }
  os << "end\n";
}

bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error) {
  return ReadIndex(is, expected_nodes, expected_trajectories, index, error,
                   nullptr, nullptr);
}

bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend) {
  std::string header;
  std::getline(is, header);
  if (util::Trim(header) != "netclus-index v1") {
    return Fail(error, "missing/unknown index header");
  }
  MultiIndex loaded;
  size_t instances = 0;
  if (!Expect(is, "meta", error)) return false;
  if (!(is >> loaded.config_.gamma >> loaded.tau_min_ >> loaded.tau_max_ >>
        loaded.build_seconds_ >> instances)) {
    return Fail(error, "bad meta line");
  }
  size_t nodes = 0, trajs = 0;
  if (!Expect(is, "corpus", error) || !(is >> nodes >> trajs)) {
    return Fail(error, "bad corpus line");
  }
  if (nodes != expected_nodes) {
    return Fail(error,
                util::StrFormat("index built over %zu nodes, corpus has %zu",
                                nodes, expected_nodes));
  }
  if (trajs > expected_trajectories) {
    return Fail(error, util::StrFormat(
                           "index references %zu trajectories, corpus has %zu",
                           trajs, expected_trajectories));
  }
  for (size_t p = 0; p < instances; ++p) {
    auto instance = std::make_unique<ClusterIndex>();
    if (!ClusterIndex::ReadFrom(is, instance.get(), error)) return false;
    loaded.instances_.push_back(std::move(instance));
  }
  std::string tail;
  if (!(is >> tail)) return Fail(error, "truncated index (missing end)");
  if (tail == "backend") {
    std::string name;
    if (!(is >> name)) return Fail(error, "truncated backend section");
    const std::optional<graph::spf::BackendKind> kind =
        graph::spf::ParseBackendName(name);
    if (!kind.has_value()) return Fail(error, "unknown backend: " + name);
    if (*kind == graph::spf::BackendKind::kContractionHierarchies) {
      if (net == nullptr || backend == nullptr) {
        // Caller has no network to validate against: skip reconstruction
        // but still consume the payload so "end" parses.
        std::string token;
        while (is >> token && token != "end_ch") {
        }
        if (token != "end_ch") return Fail(error, "truncated ch payload");
      } else {
        std::unique_ptr<graph::spf::ContractionHierarchy> ch;
        if (!graph::spf::ContractionHierarchy::ReadFrom(is, net, &ch, error)) {
          return false;
        }
        *backend = std::move(ch);
      }
    } else if (net != nullptr && backend != nullptr) {
      *backend = graph::spf::MakeBackend(*kind, net);
    }
    if (!Expect(is, "end", error)) return false;
  } else if (tail != "end") {
    return Fail(error, "expected 'end', got '" + tail + "'");
  }
  *index = std::move(loaded);
  return true;
}

bool SaveIndex(const MultiIndex& index, const std::string& path,
               std::string* error) {
  return SaveIndex(index, nullptr, path, error);
}

bool SaveIndex(const MultiIndex& index,
               const graph::spf::DistanceBackend* backend,
               const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open for write: " + path);
  WriteIndex(index, backend, out);
  return static_cast<bool>(out);
}

bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error) {
  return LoadIndex(path, expected_nodes, expected_trajectories, index, error,
                   nullptr, nullptr);
}

bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open for read: " + path);
  return ReadIndex(in, expected_nodes, expected_trajectories, index, error,
                   net, backend);
}

}  // namespace netclus::index
