// Jaccard-similarity clustering baseline (Appendix B.1, Table 12).
//
// The alternative NetClus rejected: cluster sites whose trajectory covers
// are similar (Jaccard distance <= α). It needs the full covering sets at
// clustering time, so its cost explodes with τ — Table 12 shows it running
// out of memory at τ = 2.4 km on Beijing. Implemented to regenerate that
// table and to document why distance-based GDSP clustering won.
#ifndef NETCLUS_NETCLUS_JACCARD_H_
#define NETCLUS_NETCLUS_JACCARD_H_

#include <cstdint>
#include <vector>

#include "tops/coverage.h"
#include "tops/preference.h"

namespace netclus::index {

struct JaccardConfig {
  double alpha = 0.8;  ///< max Jaccard distance to the cluster seed
  uint64_t memory_budget_bytes = 0;  ///< 0 = unlimited
};

struct JaccardResult {
  size_t num_clusters = 0;
  std::vector<uint32_t> site_cluster;  ///< site -> cluster id
  double build_seconds = 0.0;
  uint64_t memory_bytes = 0;  ///< covering sets + scratch, analytic
  bool oom = false;
};

/// Clusters the sites of `coverage` by Jaccard distance between their
/// trajectory covers: repeatedly seed with the highest-weight unclustered
/// site and absorb all unclustered sites within distance α.
JaccardResult JaccardCluster(const tops::CoverageIndex& coverage,
                             const JaccardConfig& config);

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_JACCARD_H_
