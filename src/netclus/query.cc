#include "netclus/query.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace netclus::index {

namespace {

using tops::CoverEntry;
using tops::SiteId;
using traj::TrajId;

}  // namespace

tops::CoverageIndex QueryEngine::BuildApproxCoverage(
    double tau_m, size_t instance_id, std::vector<SiteId>* rep_sites,
    double* build_seconds, uint32_t threads) const {
  util::WallTimer timer;
  const ClusterIndex& instance = index_->instance(instance_id);

  // Representatives entering the clustered problem.
  std::vector<uint32_t> rep_cluster;  // clustered-space id -> cluster
  rep_sites->clear();
  for (uint32_t g = 0; g < instance.num_clusters(); ++g) {
    const Cluster& cluster = instance.cluster(g);
    if (cluster.representative == tops::kInvalidSite) continue;
    rep_cluster.push_back(g);
    rep_sites->push_back(cluster.representative);
  }

  // T̂C per representative, chunked over representatives. Scratch (the
  // per-trajectory best estimate with stamping so that clearing is O(1) per
  // representative) is private to each chunk, and every representative's
  // cover depends only on the immutable index, so any chunk layout and
  // thread count produce the same covers.
  // Exactly one chunk per worker: the O(num_trajs) scratch arrays are the
  // dominant setup cost on this latency-critical path, so they must be
  // allocated at most `threads` times per query (and once when serial,
  // exactly as before the parallel subsystem).
  const size_t num_trajs = store_->total_count();
  const unsigned t = util::ResolveThreads(threads);
  const size_t grain =
      util::CoarseGrain(threads, rep_cluster.size(), /*chunks_per_thread=*/1);

  std::vector<std::vector<CoverEntry>> covers(rep_cluster.size());
  util::ParallelFor(
      t, rep_cluster.size(),
      [&](size_t chunk_begin, size_t chunk_end) {
        std::vector<float> best(num_trajs, 0.0f);
        std::vector<uint32_t> stamp(num_trajs, 0);
        std::vector<TrajId> touched;
        uint32_t epoch = 0;

        for (size_t r = chunk_begin; r < chunk_end; ++r) {
          const uint32_t gi = rep_cluster[r];
          const Cluster& home = instance.cluster(gi);
          ++epoch;
          touched.clear();

          auto offer = [&](const TlEntry& e, float base) {
            const float est = e.dr_m + base;
            if (est > tau_m) return;
            if (stamp[e.traj] != epoch) {
              stamp[e.traj] = epoch;
              best[e.traj] = est;
              touched.push_back(e.traj);
            } else if (est < best[e.traj]) {
              best[e.traj] = est;
            }
          };

          // Home cluster: d̂_r = d_r(T, c_i) + d_r(c_i, r_i).
          for (const TlEntry& e : home.tl) {
            if (!store_->is_alive(e.traj)) continue;
            offer(e, home.rep_rt_m);
          }
          // Neighbor clusters:
          // d̂_r = d_r(T, c_j) + d_r(c_j, c_i) + d_r(c_i, r_i).
          for (const ClEntry& nb : home.cl) {
            const float base = nb.dr_m + home.rep_rt_m;
            if (base > tau_m) break;  // CL is distance-sorted: rest are worse
            for (const TlEntry& e : instance.cluster(nb.cluster).tl) {
              if (!store_->is_alive(e.traj)) continue;
              offer(e, base);
            }
          }

          auto& cover = covers[r];
          cover.reserve(touched.size());
          for (TrajId traj : touched) cover.push_back({traj, best[traj]});
        }
      },
      grain);
  if (build_seconds != nullptr) *build_seconds = timer.Seconds();
  return tops::CoverageIndex::FromCovers(std::move(covers), num_trajs,
                                         store_->live_count(), tau_m);
}

namespace {

// Maps clustered-space selection indices back to real site ids and rebases
// timing/bookkeeping into a QueryResult.
QueryResult FinishResult(const tops::Selection& clustered,
                         const std::vector<SiteId>& rep_sites,
                         const tops::CoverageIndex& approx, size_t instance,
                         double cover_seconds, double total_seconds) {
  QueryResult out;
  out.selection = clustered;
  out.selection.sites.clear();
  for (SiteId rep_index : clustered.sites) {
    out.selection.sites.push_back(rep_sites[rep_index]);
  }
  out.instance_used = instance;
  out.clusters_considered = rep_sites.size();
  out.cover_build_seconds = cover_seconds;
  out.total_seconds = total_seconds;
  out.transient_bytes =
      approx.MemoryBytes() + rep_sites.size() * sizeof(SiteId);
  return out;
}

}  // namespace

QueryResult QueryEngine::Tops(const tops::PreferenceFunction& psi,
                              const QueryConfig& config) const {
  util::WallTimer timer;
  const size_t p = index_->InstanceFor(config.tau_m);
  std::vector<SiteId> rep_sites;
  double cover_seconds = 0.0;
  const tops::CoverageIndex approx = BuildApproxCoverage(
      config.tau_m, p, &rep_sites, &cover_seconds, config.threads);

  // Map existing services to their clusters' representatives.
  std::unordered_map<SiteId, SiteId> rep_index_of;
  for (SiteId i = 0; i < rep_sites.size(); ++i) rep_index_of[rep_sites[i]] = i;
  const ClusterIndex& instance = index_->instance(p);
  std::vector<SiteId> existing_reps;
  for (SiteId es : config.existing_services) {
    const uint32_t g = instance.cluster_of(sites_->node(es));
    const SiteId rep = instance.cluster(g).representative;
    if (rep == tops::kInvalidSite) continue;
    auto it = rep_index_of.find(rep);
    if (it != rep_index_of.end()) existing_reps.push_back(it->second);
  }

  tops::Selection clustered;
  if (config.use_fm_sketch && psi.is_binary() && existing_reps.empty()) {
    tops::FmGreedyConfig fm_config;
    fm_config.k = config.k;
    fm_config.num_sketches = config.fm_copies;
    clustered = FmGreedy(approx, fm_config).selection;
  } else {
    if (config.use_fm_sketch && psi.is_binary()) {
      NC_LOG_WARNING << "Tops: FM-greedy has no existing-services support; "
                        "falling back to Inc-Greedy so ES is respected";
    }
    tops::GreedyConfig greedy_config;
    greedy_config.k = config.k;
    greedy_config.existing_services = existing_reps;
    greedy_config.threads = config.threads;
    clustered = IncGreedy(approx, psi, greedy_config);
  }
  return FinishResult(clustered, rep_sites, approx, p, cover_seconds,
                      timer.Seconds());
}

QueryResult QueryEngine::TopsCost(const tops::PreferenceFunction& psi,
                                  const QueryConfig& config,
                                  const std::vector<double>& site_costs,
                                  double budget) const {
  NC_CHECK_EQ(site_costs.size(), sites_->size());
  util::WallTimer timer;
  const size_t p = index_->InstanceFor(config.tau_m);
  std::vector<SiteId> rep_sites;
  double cover_seconds = 0.0;
  const tops::CoverageIndex approx = BuildApproxCoverage(
      config.tau_m, p, &rep_sites, &cover_seconds, config.threads);

  tops::CostConfig cost_config;
  cost_config.budget = budget;
  cost_config.site_costs.reserve(rep_sites.size());
  for (SiteId site : rep_sites) cost_config.site_costs.push_back(site_costs[site]);
  const tops::CostResult cost = CostGreedy(approx, psi, cost_config);
  return FinishResult(cost.selection, rep_sites, approx, p, cover_seconds,
                      timer.Seconds());
}

QueryResult QueryEngine::TopsCapacity(
    const tops::PreferenceFunction& psi, const QueryConfig& config,
    const std::vector<double>& site_capacities) const {
  NC_CHECK_EQ(site_capacities.size(), sites_->size());
  util::WallTimer timer;
  const size_t p = index_->InstanceFor(config.tau_m);
  std::vector<SiteId> rep_sites;
  double cover_seconds = 0.0;
  const tops::CoverageIndex approx = BuildApproxCoverage(
      config.tau_m, p, &rep_sites, &cover_seconds, config.threads);

  tops::CapacityConfig capacity_config;
  capacity_config.k = config.k;
  capacity_config.site_capacities.reserve(rep_sites.size());
  for (SiteId site : rep_sites) {
    capacity_config.site_capacities.push_back(site_capacities[site]);
  }
  const tops::CapacityResult capacity =
      CapacityGreedy(approx, psi, capacity_config);
  return FinishResult(capacity.selection, rep_sites, approx, p, cover_seconds,
                      timer.Seconds());
}

}  // namespace netclus::index
