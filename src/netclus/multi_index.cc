#include "netclus/multi_index.h"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.h"
#include "util/float_bits.h"
#include "util/logging.h"
#include "util/memory.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace netclus::index {

void MultiIndex::EstimateTauRange(const traj::TrajectoryStore& store,
                                  const tops::SiteSet& sites, uint64_t seed,
                                  double* tau_min_m, double* tau_max_m,
                                  const graph::spf::DistanceBackend* backend) {
  NC_CHECK_GT(sites.size(), 1u);
  const graph::RoadNetwork& net = store.network();
  const std::unique_ptr<graph::spf::DistanceQuery> query =
      graph::spf::MakeQueryOrDijkstra(backend, &net);
  util::Rng rng(seed);

  // τ_min: the smallest site-to-site round trip. For each sampled site,
  // expand a small bounded round-trip search until another site appears.
  const size_t min_samples = std::min<size_t>(sites.size(), 48);
  double tau_min = graph::kInfDistance;
  for (size_t i = 0; i < min_samples; ++i) {
    const tops::SiteId s = static_cast<tops::SiteId>(
        rng.UniformInt(static_cast<uint64_t>(sites.size())));
    const graph::NodeId node = sites.node(s);
    double radius = 100.0;
    for (int attempt = 0; attempt < 12; ++attempt) {
      const std::vector<graph::RoundTrip> rts =
          query->BoundedRoundTrip(node, radius);
      double best = graph::kInfDistance;
      for (const graph::RoundTrip& rt : rts) {
        if (rt.node == node) continue;
        if (sites.SiteAtNode(rt.node) == tops::kInvalidSite) continue;
        best = std::min(best, rt.total());
      }
      if (best != graph::kInfDistance) {
        tau_min = std::min(tau_min, best);
        break;
      }
      radius *= 2.0;
    }
  }
  if (util::BitEqual(tau_min, graph::kInfDistance)) tau_min = 100.0;

  // τ_max: the largest site-to-site round trip, lower-bounded by sampling
  // full searches from a handful of sites.
  const size_t max_samples = std::min<size_t>(sites.size(), 8);
  double tau_max = 0.0;
  for (size_t i = 0; i < max_samples; ++i) {
    const tops::SiteId s = static_cast<tops::SiteId>(
        rng.UniformInt(static_cast<uint64_t>(sites.size())));
    const graph::NodeId node = sites.node(s);
    const std::vector<double> fwd =
        query->FullSearch(node, graph::Direction::kForward);
    const std::vector<double> rev =
        query->FullSearch(node, graph::Direction::kReverse);
    for (tops::SiteId other = 0; other < sites.size(); ++other) {
      const graph::NodeId v = sites.node(other);
      if (fwd[v] == graph::kInfDistance || rev[v] == graph::kInfDistance) continue;
      tau_max = std::max(tau_max, fwd[v] + rev[v]);
    }
  }
  if (tau_max <= tau_min) tau_max = tau_min * 64.0;
  *tau_min_m = tau_min;
  *tau_max_m = tau_max;
}

MultiIndex MultiIndex::Build(const traj::TrajectoryStore& store,
                             const tops::SiteSet& sites,
                             const MultiIndexConfig& config,
                             const graph::spf::DistanceBackend* backend) {
  NC_CHECK_GT(config.gamma, 0.0);
  util::WallTimer timer;
  MultiIndex index;
  index.config_ = config;

  double tau_min = config.tau_min_m;
  double tau_max = config.tau_max_m;
  if (tau_min <= 0.0 || tau_max <= 0.0) {
    double est_min = 0.0, est_max = 0.0;
    EstimateTauRange(store, sites, config.seed, &est_min, &est_max, backend);
    if (tau_min <= 0.0) tau_min = est_min;
    if (tau_max <= 0.0) tau_max = est_max;
  }
  NC_CHECK_GT(tau_max, tau_min);
  index.tau_min_ = tau_min;
  index.tau_max_ = tau_max;

  // t = floor(log_{1+γ}(τ_max / τ_min)) + 1 instances (Sec. 4.4).
  uint32_t t = static_cast<uint32_t>(std::floor(
                   std::log(tau_max / tau_min) / std::log1p(config.gamma))) +
               1;
  t = std::min(t, config.max_instances);
  NC_LOG_INFO << "MultiIndex: tau range [" << tau_min << ", " << tau_max
              << ") m, gamma " << config.gamma << " -> " << t << " instances";

  // Instances are independent builds at different radii. Two regimes:
  // enough instances to occupy every thread -> one instance per worker
  // (grain 1, inner loops serial); fewer instances than threads -> build
  // instances one after another, each fanning its per-cluster loops across
  // all threads. Either way the full thread budget does useful work, and
  // each instance build is deterministic, so the index is identical in
  // both regimes and at every thread count.
  const unsigned threads = util::ResolveThreads(config.threads);
  const double r0 = tau_min / 4.0;
  index.instances_.resize(t);
  auto build_instance = [&](size_t p, uint32_t instance_threads) {
    ClusterIndexConfig instance_config;
    instance_config.radius_m =
        r0 * std::pow(1.0 + config.gamma, static_cast<double>(p));
    instance_config.gamma = config.gamma;
    instance_config.gdsp_strategy = config.gdsp_strategy;
    instance_config.fm_copies = config.fm_copies;
    instance_config.representative_rule = config.representative_rule;
    instance_config.threads = instance_threads;
    index.instances_[p] = std::make_unique<ClusterIndex>(
        ClusterIndex::Build(store, sites, instance_config, backend));
  };
  if (t >= threads) {
    util::ParallelFor(
        threads, t,
        [&](size_t begin, size_t end) {
          for (size_t p = begin; p < end; ++p) build_instance(p, 1);
        },
        /*grain=*/1);
  } else {
    for (uint32_t p = 0; p < t; ++p) build_instance(p, threads);
  }
  for (uint32_t p = 0; p < t; ++p) {
    NC_LOG_DEBUG << "  instance " << p
                 << ": R = " << index.instances_[p]->radius_m()
                 << " m, clusters = " << index.instances_[p]->num_clusters();
  }
  index.build_seconds_ = timer.Seconds();
  return index;
}

MultiIndex MultiIndex::Clone() const {
  MultiIndex copy;
  copy.config_ = config_;
  copy.tau_min_ = tau_min_;
  copy.tau_max_ = tau_max_;
  copy.build_seconds_ = build_seconds_;
  copy.instances_.reserve(instances_.size());
  for (const auto& instance : instances_) {
    copy.instances_.push_back(std::make_unique<ClusterIndex>(*instance));
  }
  return copy;
}

size_t MultiIndex::InstanceFor(double tau_m) const {
  NC_CHECK(!instances_.empty());
  // Negated comparisons so NaN falls through to the coarsest clamp each
  // side: a garbage τ from an external client must select *some* instance,
  // never feed an unrepresentable double into the size_t cast (UB).
  if (!(tau_m > tau_min_)) return 0;
  const double p = std::floor(std::log(tau_m / tau_min_) / std::log1p(config_.gamma));
  if (!(p > 0.0)) return 0;
  if (p >= static_cast<double>(instances_.size() - 1)) {
    return instances_.size() - 1;
  }
  return static_cast<size_t>(p);
}

uint64_t MultiIndex::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& instance : instances_) total += instance->MemoryBytes();
  return total;
}

uint64_t MultiIndex::PostingsBytesCompressed() const {
  uint64_t total = 0;
  for (const auto& instance : instances_) {
    total += instance->PostingsBytesCompressed();
  }
  return total;
}

uint64_t MultiIndex::PostingsBytesRaw() const {
  uint64_t total = 0;
  for (const auto& instance : instances_) total += instance->PostingsBytesRaw();
  return total;
}

void MultiIndex::AddTrajectory(const traj::TrajectoryStore& store,
                               traj::TrajId t) {
  for (auto& instance : instances_) instance->AddTrajectory(store, t);
}

void MultiIndex::RemoveTrajectory(traj::TrajId t) {
  for (auto& instance : instances_) instance->RemoveTrajectory(t);
}

void MultiIndex::AddSite(const traj::TrajectoryStore& store,
                         const tops::SiteSet& sites, tops::SiteId s) {
  for (auto& instance : instances_) instance->AddSite(store, sites, s);
}

void MultiIndex::RemoveSite(const traj::TrajectoryStore& store,
                            const tops::SiteSet& sites, tops::SiteId s) {
  for (auto& instance : instances_) instance->RemoveSite(store, sites, s);
}

}  // namespace netclus::index
