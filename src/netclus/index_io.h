// Persistence for the NetClus index.
//
// The offline phase (multi-resolution clustering) is the expensive part of
// the system — hours on the paper's full Beijing dataset (Table 11) — while
// the online phase is interactive. A deployment therefore builds the index
// once and serves queries from a loaded copy. Two file formats:
//
//  * v1 — the original line-oriented text format, still written on request
//    and always readable (backward compatibility).
//  * v2 — a versioned little-endian binary layout (magic "NCIXBIN2",
//    section table, per-section FNV-1a checksums) whose posting arenas are
//    stored verbatim as flat varint streams with plain u64 offset tables.
//  * v3 — the same container (magic "NCIXBIN3") with block-structured
//    posting arenas: 128-entry blocks with per-block skip headers (SIMD
//    bulk decode, O(blocks) skipping) and Elias–Fano compressed offset
//    tables. The default write format; v2 and v1 stay readable forever.
//
// Loading a binary file either copies it once into a heap block or mmaps
// it; in both cases the compressed TL/CC arenas alias the backing block
// zero-copy, so Engine::LoadIndexFromFile and the serving layer's
// snapshots share one set of immutable posting bytes. On the mmap path a
// nonzero NETCLUS_PAGE_BUDGET attaches a store::BufferPool that caps how
// much of the mapping stays resident — larger-than-RAM indexes serve
// within a fixed budget. See docs/index_format.md for the byte layout.
//
// The road network and the trajectory store are NOT serialized here — they
// are the inputs (persist them with graph::SaveGraph and your trajectory
// source of truth); loading validates that node/trajectory counts match.
//
// The distance backend that built the index can ride along in an optional
// backend section: the kind is always recorded, and a Contraction
// Hierarchies backend serializes its full preprocessed hierarchy, so a
// deployment that ships index snapshots never re-contracts on load. Files
// without the section (pre-spf) still load.
//
// Malformed input — truncated files, corrupt counts, checksum mismatches —
// fails loudly with a message in `error` and never yields a
// partially-initialized index.
#ifndef NETCLUS_NETCLUS_INDEX_IO_H_
#define NETCLUS_NETCLUS_INDEX_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "graph/spf/distance_backend.h"
#include "netclus/multi_index.h"
#include "store/arena.h"

namespace netclus::index {

/// On-disk format selector for SaveIndex.
enum class IndexFileFormat {
  kTextV1,    ///< line-oriented text (original format)
  kBinaryV2,  ///< sectioned binary with checksums + flat zero-copy arenas
  kBinaryV3,  ///< v2 container with blocked arenas + Elias–Fano offsets
};

/// How LoadIndex materializes a v2 file (v1 text always streams).
enum class IndexLoadMode {
  kAuto,  ///< mmap when available unless NETCLUS_INDEX_MMAP=0; else copy
  kCopy,  ///< read the file into one heap block
  kMmap,  ///< map the file; posting arenas alias the mapping (zero copy)
};

/// Writes the full multi-resolution index to the stream in v1 text;
/// `backend` (may be null) is recorded in the trailing backend section.
void WriteIndex(const MultiIndex& index, std::ostream& os);
void WriteIndex(const MultiIndex& index,
                const graph::spf::DistanceBackend* backend, std::ostream& os);

/// Streams the index (and optional backend) to `os` in the v2 binary
/// format, one section at a time — peak transient memory is one
/// serialized section, not the whole image. Requires a seekable stream
/// (the header and section table are patched at the end). The image is
/// self-contained relative to the stream position at entry: all recorded
/// offsets count from the image's first byte, so an image embedded after
/// a preamble must later be handed to ReadIndexV2 as a block starting at
/// that position (LoadIndex expects the image at file offset 0).
void WriteIndexV2(const MultiIndex& index,
                  const graph::spf::DistanceBackend* backend,
                  std::ostream& os);

/// Same container as WriteIndexV2 but magic "NCIXBIN3" and blocked
/// posting arenas with Elias–Fano offsets (the SaveIndex default).
void WriteIndexV3(const MultiIndex& index,
                  const graph::spf::DistanceBackend* backend,
                  std::ostream& os);

/// Serializes the index (and optional backend) into a v2/v3 binary image
/// held in memory (tests and small indexes; SaveIndex streams instead).
std::vector<uint8_t> EncodeIndexV2(const MultiIndex& index,
                                   const graph::spf::DistanceBackend* backend);
std::vector<uint8_t> EncodeIndexV3(const MultiIndex& index,
                                   const graph::spf::DistanceBackend* backend);

/// Reads an index previously written by WriteIndex (v1 text stream).
/// `expected_nodes` and `expected_trajectories` guard against loading an
/// index built over a different network/corpus (pass the live counts).
/// Returns false with a message in `error` on any mismatch or malformed
/// input.
///
/// When `net` and `backend` are given, a backend section in the file is
/// reconstructed over `net` into `*backend` (left null when the file has
/// none — pre-spf files load unchanged).
bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error);
bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend);

/// Parses a v2 or v3 binary image (the magic selects the arena layout).
/// The block may alias an mmap'ed file or a heap read; the loaded index's
/// posting arenas alias it either way (and keep it alive). Checksums are
/// verified before anything is trusted.
bool ReadIndexV2(store::ByteBlock block, size_t expected_nodes,
                 size_t expected_trajectories, MultiIndex* index,
                 std::string* error, const graph::RoadNetwork* net,
                 std::shared_ptr<const graph::spf::DistanceBackend>* backend);

/// True when `block` starts with the v2 magic (exactly "NCIXBIN2").
bool IsV2IndexImage(const uint8_t* data, size_t size);

/// True when `block` starts with any supported binary magic (v2 or v3).
bool IsBinaryIndexImage(const uint8_t* data, size_t size);

/// File convenience wrappers. SaveIndex defaults to the v3 binary format;
/// LoadIndex sniffs the magic, so it reads all formats transparently.
bool SaveIndex(const MultiIndex& index, const std::string& path,
               std::string* error,
               IndexFileFormat format = IndexFileFormat::kBinaryV3);
bool SaveIndex(const MultiIndex& index,
               const graph::spf::DistanceBackend* backend,
               const std::string& path, std::string* error,
               IndexFileFormat format = IndexFileFormat::kBinaryV3);
bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error);
bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend,
               IndexLoadMode mode = IndexLoadMode::kAuto);

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_INDEX_IO_H_
