// Persistence for the NetClus index.
//
// The offline phase (multi-resolution clustering) is the expensive part of
// the system — hours on the paper's full Beijing dataset (Table 11) — while
// the online phase is interactive. A deployment therefore builds the index
// once and serves queries from a loaded copy; these routines serialize a
// MultiIndex (all instances, cluster metadata, trajectory cluster
// sequences) to a line-oriented text format, versioned and validated on
// load.
//
// The road network and the trajectory store are NOT serialized here — they
// are the inputs (persist them with graph::SaveGraph and your trajectory
// source of truth); loading validates that node/trajectory counts match.
//
// The distance backend that built the index can ride along in an optional
// trailing `backend` section: the kind is always recorded, and a
// Contraction Hierarchies backend serializes its full preprocessed
// hierarchy, so a deployment that ships index snapshots never re-contracts
// on load. Files without the section (pre-spf) still load.
#ifndef NETCLUS_NETCLUS_INDEX_IO_H_
#define NETCLUS_NETCLUS_INDEX_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "graph/spf/distance_backend.h"
#include "netclus/multi_index.h"

namespace netclus::index {

/// Writes the full multi-resolution index to the stream; `backend` (may be
/// null) is recorded in the trailing backend section.
void WriteIndex(const MultiIndex& index, std::ostream& os);
void WriteIndex(const MultiIndex& index,
                const graph::spf::DistanceBackend* backend, std::ostream& os);

/// Reads an index previously written by WriteIndex. `expected_nodes` and
/// `expected_trajectories` guard against loading an index built over a
/// different network/corpus (pass the live counts). Returns false with a
/// message in `error` on any mismatch or malformed input.
///
/// When `net` and `backend` are given, a backend section in the file is
/// reconstructed over `net` into `*backend` (left null when the file has
/// none — pre-spf files load unchanged).
bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error);
bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend);

/// File convenience wrappers.
bool SaveIndex(const MultiIndex& index, const std::string& path,
               std::string* error);
bool SaveIndex(const MultiIndex& index,
               const graph::spf::DistanceBackend* backend,
               const std::string& path, std::string* error);
bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error);
bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error, const graph::RoadNetwork* net,
               std::shared_ptr<const graph::spf::DistanceBackend>* backend);

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_INDEX_IO_H_
