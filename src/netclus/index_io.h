// Persistence for the NetClus index.
//
// The offline phase (multi-resolution clustering) is the expensive part of
// the system — hours on the paper's full Beijing dataset (Table 11) — while
// the online phase is interactive. A deployment therefore builds the index
// once and serves queries from a loaded copy; these routines serialize a
// MultiIndex (all instances, cluster metadata, trajectory cluster
// sequences) to a line-oriented text format, versioned and validated on
// load.
//
// The road network and the trajectory store are NOT serialized here — they
// are the inputs (persist them with graph::SaveGraph and your trajectory
// source of truth); loading validates that node/trajectory counts match.
#ifndef NETCLUS_NETCLUS_INDEX_IO_H_
#define NETCLUS_NETCLUS_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "netclus/multi_index.h"

namespace netclus::index {

/// Writes the full multi-resolution index to the stream.
void WriteIndex(const MultiIndex& index, std::ostream& os);

/// Reads an index previously written by WriteIndex. `expected_nodes` and
/// `expected_trajectories` guard against loading an index built over a
/// different network/corpus (pass the live counts). Returns false with a
/// message in `error` on any mismatch or malformed input.
bool ReadIndex(std::istream& is, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error);

/// File convenience wrappers.
bool SaveIndex(const MultiIndex& index, const std::string& path,
               std::string* error);
bool LoadIndex(const std::string& path, size_t expected_nodes,
               size_t expected_trajectories, MultiIndex* index,
               std::string* error);

}  // namespace netclus::index

#endif  // NETCLUS_NETCLUS_INDEX_IO_H_
