#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "util/flags.h"

namespace netclus::obs {

namespace {

// Span <-> 7-word packing for the atomic ring.
//   w0 trace_id   w1 start_ns   w2 duration_ns   w3 plan_fingerprint
//   w4 snapshot_version   w5 flags<<32 | thread_id   w6 name<<8 | lane
void PackSpan(const Span& s, uint64_t words[]) {
  words[0] = s.trace_id;
  words[1] = s.start_ns;
  words[2] = s.duration_ns;
  words[3] = s.plan_fingerprint;
  words[4] = s.snapshot_version;
  words[5] = (static_cast<uint64_t>(s.flags) << 32) | s.thread_id;
  words[6] = (static_cast<uint64_t>(s.name) << 8) |
             static_cast<uint64_t>(s.lane);
}

Span UnpackSpan(const uint64_t words[]) {
  Span s;
  s.trace_id = words[0];
  s.start_ns = words[1];
  s.duration_ns = words[2];
  s.plan_fingerprint = words[3];
  s.snapshot_version = words[4];
  s.flags = static_cast<uint32_t>(words[5] >> 32);
  s.thread_id = static_cast<uint32_t>(words[5]);
  s.name = static_cast<SpanName>((words[6] >> 8) & 0xff);
  s.lane = static_cast<uint8_t>(words[6] & 0xff);
  return s;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void AppendFlagsJson(std::string* out, uint32_t flags) {
  *out += "{\"cache_hit\":";
  *out += (flags & kFlagCacheHit) ? "true" : "false";
  *out += ",\"stale\":";
  *out += (flags & kFlagStale) ? "true" : "false";
  *out += ",\"shed\":";
  *out += (flags & kFlagShed) ? "true" : "false";
  *out += ",\"error\":";
  *out += (flags & kFlagError) ? "true" : "false";
  *out += ",\"tail_kept\":";
  *out += (flags & kFlagTailKept) ? "true" : "false";
  *out += ",\"cover_shared\":";
  *out += (flags & kFlagCoverShared) ? "true" : "false";
  *out += "}";
}

const char* LaneString(uint8_t lane) {
  switch (lane) {
    case 0:
      return "fast";
    case 1:
      return "normal";
    case 2:
      return "heavy";
  }
  return "unknown";
}

}  // namespace

const char* SpanNameString(SpanName name) {
  switch (name) {
    case SpanName::kRequest:
      return "Request";
    case SpanName::kQueue:
      return "Queue";
    case SpanName::kAdmit:
      return "Admit";
    case SpanName::kCoverBuild:
      return "CoverBuild";
    case SpanName::kSolve:
      return "Solve";
    case SpanName::kAssemble:
      return "Assemble";
    case SpanName::kFinish:
      return "Finish";
  }
  return "Unknown";
}

uint64_t TraceNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

uint32_t TraceThreadId() {
  thread_local const uint32_t id = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return id;
}

SpanRing::SpanRing(size_t capacity) {
  const size_t cap = RoundUpPow2(capacity < 2 ? 2 : capacity);
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
}

void SpanRing::Push(const Span& span) {
  uint64_t packed[kWords];
  PackSpan(span, packed);
  const uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  // Seqlock write: odd marks in-progress, even (release) publishes. The
  // sequence encodes the global index so readers can order spans and
  // detect slots overwritten mid-copy.
  slot.seq.store(2 * idx + 1, std::memory_order_relaxed);
  for (size_t w = 0; w < kWords; ++w) {
    slot.words[w].store(packed[w], std::memory_order_relaxed);
  }
  slot.seq.store(2 * idx + 2, std::memory_order_release);
}

std::vector<Span> SpanRing::Snapshot() const {
  struct Numbered {
    uint64_t seq;
    Span span;
  };
  std::vector<Numbered> collected;
  const size_t cap = mask_ + 1;
  collected.reserve(cap);
  for (size_t i = 0; i < cap; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    uint64_t packed[kWords];
    for (size_t w = 0; w < kWords; ++w) {
      packed[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    collected.push_back({before, UnpackSpan(packed)});
  }
  std::sort(collected.begin(), collected.end(),
            [](const Numbered& a, const Numbered& b) { return a.seq < b.seq; });
  std::vector<Span> out;
  out.reserve(collected.size());
  for (const auto& n : collected) out.push_back(n.span);
  return out;
}

Tracer::Tracer()
    : Tracer(util::GetEnvDouble("NETCLUS_TRACE_SAMPLE", 0.01),
             static_cast<uint64_t>(util::GetEnvInt("NETCLUS_TRACE_SEED", 0)),
             static_cast<size_t>(
                 util::GetEnvInt("NETCLUS_TRACE_RING", 8192))) {}

Tracer::Tracer(double sample_rate, uint64_t seed, size_t ring_capacity)
    : ring_(ring_capacity), sample_rate_(sample_rate), seed_(seed) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetSampleRate(double rate) {
  if (!(rate >= 0.0)) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  sample_rate_.store(rate, std::memory_order_relaxed);
}

bool Tracer::Sampled(uint64_t trace_id) const {
  const double rate = sample_rate_.load(std::memory_order_relaxed);
  if (rate >= 1.0) return true;
  if (!(rate > 0.0)) return false;
  const uint64_t h =
      SplitMix64(trace_id ^ seed_.load(std::memory_order_relaxed));
  // Compare against rate * 2^64 without overflowing: scale via long double.
  const auto threshold = static_cast<uint64_t>(
      static_cast<long double>(rate) * 18446744073709551615.0L);
  return h < threshold;
}

std::string Tracer::DumpChromeTrace() const {
  const std::vector<Span> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const Span& s : spans) {
    if (!first) out += ",";
    first = false;
    // Complete ("X") events; ts/dur are microseconds as doubles, so
    // sub-microsecond spans keep their fractional part.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"netclus\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,",
                  SpanNameString(s.name),
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns) / 1e3, s.thread_id);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"args\":{\"trace_id\":%llu,\"lane\":\"%s\","
                  "\"snapshot_version\":%llu,\"plan\":\"%016llx\",\"flags\":",
                  static_cast<unsigned long long>(s.trace_id),
                  LaneString(s.lane),
                  static_cast<unsigned long long>(s.snapshot_version),
                  static_cast<unsigned long long>(s.plan_fingerprint));
    out += buf;
    AppendFlagsJson(&out, s.flags);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceContext::AddSpan(SpanName name, uint8_t lane, uint64_t start_ns,
                           uint64_t end_ns) {
  if (!sampled_ || tracer_ == nullptr) return;
  pending_.push_back({name, lane, TraceThreadId(), start_ns,
                      end_ns > start_ns ? end_ns : start_ns});
}

void TraceContext::Finish(uint8_t lane, bool tail_keep,
                          uint64_t queue_end_ns) {
  if (tracer_ == nullptr) return;
  const uint64_t end_ns = TraceNowNs();
  if (!sampled_) {
    if (!tail_keep) return;
    // Tail-kept request: synthesize coarse spans from the timings the
    // serving path tracks anyway — the tail is never invisible even when
    // head sampling skipped it.
    flags_ |= kFlagTailKept;
    Span queue;
    queue.trace_id = trace_id_;
    queue.name = SpanName::kQueue;
    queue.lane = lane;
    queue.thread_id = TraceThreadId();
    queue.start_ns = start_ns_;
    queue.duration_ns =
        queue_end_ns > start_ns_ ? queue_end_ns - start_ns_ : 0;
    queue.plan_fingerprint = plan_fingerprint_;
    queue.snapshot_version = snapshot_version_;
    queue.flags = flags_;
    tracer_->Record(queue);
  } else {
    for (const Pending& p : pending_) {
      Span s;
      s.trace_id = trace_id_;
      s.name = p.name;
      s.lane = p.lane;
      s.thread_id = p.thread_id;
      s.start_ns = p.start_ns;
      s.duration_ns = p.end_ns - p.start_ns;
      s.plan_fingerprint = plan_fingerprint_;
      s.snapshot_version = snapshot_version_;
      s.flags = flags_;
      tracer_->Record(s);
    }
  }
  Span root;
  root.trace_id = trace_id_;
  root.name = SpanName::kRequest;
  root.lane = lane;
  root.thread_id = TraceThreadId();
  root.start_ns = start_ns_;
  root.duration_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  root.plan_fingerprint = plan_fingerprint_;
  root.snapshot_version = snapshot_version_;
  root.flags = flags_;
  tracer_->Record(root);
  pending_.clear();
}

}  // namespace netclus::obs
