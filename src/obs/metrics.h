// Metrics registry: named Counter / Gauge / Histogram instruments with an
// export path (Prometheus text exposition + JSON).
//
// Two ways to get a value into the registry:
//
//  1. Owned instruments — `GetCounter`/`GetGauge`/`GetHistogram` return a
//     stable pointer to an instrument the registry owns; hot paths bump it
//     directly (relaxed atomics, no locks).
//  2. Providers — `RegisterProvider` / `RegisterHistogramView` attach a
//     callback (or an existing util::LatencyHistogram) that is *polled at
//     export time*. This is how the serving structs (caches, scheduler,
//     admission counters) publish without changing their hot paths: the
//     counters they already keep become the source of truth and the
//     registry reads them when someone asks.
//
// Registration is idempotent on (name, labels): asking again returns the
// same instrument. Export output is sorted by name then labels so golden
// tests are stable.
//
// Naming convention (see docs/observability.md): netclus_<subsystem>_<what>
// with Prometheus-style suffixes (_total for counters, _seconds for
// latency histograms).
#ifndef NETCLUS_OBS_METRICS_H_
#define NETCLUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/thread_annotations.h"

namespace netclus::obs {

/// Label set attached to an instrument, e.g. {{"lane", "heavy"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Relaxed atomic; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value. Set/Add are lock-free; Add uses a CAS loop because
/// fetch_add on atomic<double> needs C++20.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram instrument; thin wrapper over util::LatencyHistogram
/// so exporters can reuse its geometric bucket layout.
class Histogram {
 public:
  void Observe(double seconds) { hist_.Record(seconds); }
  const util::LatencyHistogram& view() const { return hist_; }

 private:
  util::LatencyHistogram hist_;
};

enum class ExportFormat { kPrometheusText, kJson };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry for code with no engine/server context.
  static MetricsRegistry& Global();

  /// Returns the instrument registered under (name, labels), creating it on
  /// first use. Pointers stay valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, Labels labels = {},
                      const std::string& help = "") EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, Labels labels = {},
                  const std::string& help = "") EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          const std::string& help = "") EXCLUDES(mu_);

  /// Registers a polled value: `fn` runs at export time on the exporting
  /// thread. `counter` selects the Prometheus type (counter vs gauge).
  /// Re-registering the same (name, labels) replaces the callback.
  void RegisterProvider(const std::string& name, Labels labels,
                        const std::string& help, bool counter,
                        std::function<double()> fn) EXCLUDES(mu_);

  /// Exports an existing LatencyHistogram (owned elsewhere, must outlive
  /// the registry entry) as a histogram family without copying samples.
  void RegisterHistogramView(const std::string& name, Labels labels,
                             const std::string& help,
                             const util::LatencyHistogram* hist)
      EXCLUDES(mu_);

  std::string Export(ExportFormat format) const EXCLUDES(mu_);
  std::string ExportPrometheus() const {
    return Export(ExportFormat::kPrometheusText);
  }
  std::string ExportJson() const { return Export(ExportFormat::kJson); }

  /// Number of registered instruments (all kinds).
  size_t size() const EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kProvider, kHistogramView };

  // name/labels/help and the owned instruments are immutable once the
  // entry is created; kind, provider_is_counter, provider and hist_view
  // can be *replaced* by re-registration and must only be read under mu_
  // (Export copies them into a snapshot before invoking anything).
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    Kind kind;
    bool provider_is_counter = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> provider;
    const util::LatencyHistogram* hist_view = nullptr;
  };

  Entry* FindOrNull(const std::string& name, const Labels& labels)
      REQUIRES(mu_);

  mutable nc::Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
};

}  // namespace netclus::obs

#endif  // NETCLUS_OBS_METRICS_H_
