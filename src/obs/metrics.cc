#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace netclus::obs {

namespace {

// Shortest round-trippable representation; Prometheus and JSON both accept
// scientific notation.
std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the short form when it round-trips.
  char short_buf[64];
  std::snprintf(short_buf, sizeof(short_buf), "%.10g", v);
  double back = 0.0;
  std::sscanf(short_buf, "%lf", &back);
  return back == v ? std::string(short_buf) : std::string(buf);
}

std::string JsonDouble(double v) {
  // JSON has no Inf/NaN literals.
  if (std::isnan(v) || std::isinf(v)) return "null";
  return FormatDouble(v);
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

std::string PromLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(&out, v);
    out += "\"";
  }
  out += "}";
  return out;
}

// Labels with one extra pair appended (for histogram le= buckets).
std::string PromLabelsPlus(const Labels& labels, const std::string& key,
                           const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return PromLabels(extended);
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendEscaped(&out, k);
    out += "\":\"";
    AppendEscaped(&out, v);
    out += "\"";
  }
  out += "}";
  return out;
}

void AppendPromHistogram(std::string* out, const std::string& name,
                         const Labels& labels,
                         const util::LatencyHistogram& hist) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < util::LatencyHistogram::kBuckets; ++i) {
    const uint64_t in_bucket = hist.bucket_count(i);
    if (in_bucket == 0) continue;  // only materialize populated edges
    cumulative += in_bucket;
    *out += name + "_bucket" +
            PromLabelsPlus(
                labels, "le",
                FormatDouble(util::LatencyHistogram::BucketUpperSeconds(i))) +
            " " + std::to_string(cumulative) + "\n";
  }
  const uint64_t total = hist.count();
  *out += name + "_bucket" + PromLabelsPlus(labels, "le", "+Inf") + " " +
          std::to_string(total) + "\n";
  *out += name + "_sum" + PromLabels(labels) + " " +
          FormatDouble(hist.total_seconds()) + "\n";
  *out += name + "_count" + PromLabels(labels) + " " + std::to_string(total) +
          "\n";
}

void AppendJsonHistogram(std::string* out,
                         const util::LatencyHistogram& hist) {
  *out += "\"count\":" + std::to_string(hist.count());
  *out += ",\"sum\":" + JsonDouble(hist.total_seconds());
  *out += ",\"mean\":" + JsonDouble(hist.MeanSeconds());
  *out += ",\"p50\":" + JsonDouble(hist.PercentileSeconds(0.50));
  *out += ",\"p90\":" + JsonDouble(hist.PercentileSeconds(0.90));
  *out += ",\"p99\":" + JsonDouble(hist.PercentileSeconds(0.99));
  *out += ",\"p999\":" + JsonDouble(hist.PercentileSeconds(0.999));
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(const std::string& name,
                                                    const Labels& labels) {
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels,
                                     const std::string& help) {
  const nc::MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name, labels)) return e->counter.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->help = help;
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter* out = entry->counter.get();
  entries_.push_back(std::move(entry));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels,
                                 const std::string& help) {
  const nc::MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name, labels)) return e->gauge.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->help = help;
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge* out = entry->gauge.get();
  entries_.push_back(std::move(entry));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         const std::string& help) {
  const nc::MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name, labels)) return e->histogram.get();
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->help = help;
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>();
  Histogram* out = entry->histogram.get();
  entries_.push_back(std::move(entry));
  return out;
}

void MetricsRegistry::RegisterProvider(const std::string& name, Labels labels,
                                       const std::string& help, bool counter,
                                       std::function<double()> fn) {
  const nc::MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name, labels)) {
    e->kind = Kind::kProvider;
    e->provider_is_counter = counter;
    e->provider = std::move(fn);
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->help = help;
  entry->kind = Kind::kProvider;
  entry->provider_is_counter = counter;
  entry->provider = std::move(fn);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::RegisterHistogramView(
    const std::string& name, Labels labels, const std::string& help,
    const util::LatencyHistogram* hist) {
  const nc::MutexLock lock(mu_);
  if (Entry* e = FindOrNull(name, labels)) {
    e->kind = Kind::kHistogramView;
    e->hist_view = hist;
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->help = help;
  entry->kind = Kind::kHistogramView;
  entry->hist_view = hist;
  entries_.push_back(std::move(entry));
}

size_t MetricsRegistry::size() const {
  const nc::MutexLock lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::Export(ExportFormat format) const {
  // Snapshot each entry under the lock. Entries are never destroyed while
  // the registry lives and the owned instruments are immutable atomics,
  // but kind/provider/hist_view can be *replaced* by a concurrent
  // re-registration — copy them here and only invoke the provider copies
  // after the lock is dropped (a provider may take other locks or even
  // touch this registry).
  struct Snap {
    const Entry* entry;  // stable fields: name, labels, help, instruments
    Kind kind;
    bool provider_is_counter;
    std::function<double()> provider;
    const util::LatencyHistogram* hist_view;
  };
  std::vector<Snap> sorted;
  {
    const nc::MutexLock lock(mu_);
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) {
      sorted.push_back(Snap{e.get(), e->kind, e->provider_is_counter,
                            e->provider, e->hist_view});
    }
  }
  std::sort(sorted.begin(), sorted.end(), [](const Snap& a, const Snap& b) {
    if (a.entry->name != b.entry->name) return a.entry->name < b.entry->name;
    return a.entry->labels < b.entry->labels;
  });

  std::string out;
  if (format == ExportFormat::kPrometheusText) {
    const std::string* last_family = nullptr;
    for (const Snap& s : sorted) {
      const Entry* e = s.entry;
      const bool histo =
          s.kind == Kind::kHistogram || s.kind == Kind::kHistogramView;
      if (last_family == nullptr || *last_family != e->name) {
        if (!e->help.empty()) {
          out += "# HELP " + e->name + " " + e->help + "\n";
        }
        const char* type = "gauge";
        if (histo) {
          type = "histogram";
        } else if (s.kind == Kind::kCounter ||
                   (s.kind == Kind::kProvider && s.provider_is_counter)) {
          type = "counter";
        }
        out += "# TYPE " + e->name + " " + type + "\n";
        last_family = &e->name;
      }
      switch (s.kind) {
        case Kind::kCounter:
          out += e->name + PromLabels(e->labels) + " " +
                 std::to_string(e->counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += e->name + PromLabels(e->labels) + " " +
                 FormatDouble(e->gauge->Value()) + "\n";
          break;
        case Kind::kProvider:
          out += e->name + PromLabels(e->labels) + " " +
                 FormatDouble(s.provider ? s.provider() : 0.0) + "\n";
          break;
        case Kind::kHistogram:
          AppendPromHistogram(&out, e->name, e->labels,
                              e->histogram->view());
          break;
        case Kind::kHistogramView:
          AppendPromHistogram(&out, e->name, e->labels, *s.hist_view);
          break;
      }
    }
    return out;
  }

  out += "{\"metrics\":[";
  bool first = true;
  for (const Snap& s : sorted) {
    const Entry* e = s.entry;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, e->name);
    out += "\",\"labels\":" + JsonLabels(e->labels) + ",";
    switch (s.kind) {
      case Kind::kCounter:
        out += "\"type\":\"counter\",\"value\":" +
               std::to_string(e->counter->Value());
        break;
      case Kind::kGauge:
        out += "\"type\":\"gauge\",\"value\":" + JsonDouble(e->gauge->Value());
        break;
      case Kind::kProvider:
        out += std::string("\"type\":\"") +
               (s.provider_is_counter ? "counter" : "gauge") +
               "\",\"value\":" + JsonDouble(s.provider ? s.provider() : 0.0);
        break;
      case Kind::kHistogram:
        out += "\"type\":\"histogram\",";
        AppendJsonHistogram(&out, e->histogram->view());
        break;
      case Kind::kHistogramView:
        out += "\"type\":\"histogram\",";
        AppendJsonHistogram(&out, *s.hist_view);
        break;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace netclus::obs
