// Request tracing: per-request spans recorded into a bounded lock-free
// ring, dumped as Chrome trace_event JSON (loads in chrome://tracing and
// Perfetto).
//
// Sampling model:
//  - Head sampling: each request draws a trace id; a deterministic hash of
//    (trace_id ^ seed) against NETCLUS_TRACE_SAMPLE decides up-front
//    whether the request records full per-stage spans. Deterministic so
//    tests can pin the seed and know exactly which ids sample.
//  - Tail keep: requests that finish slow / shed / errored but were NOT
//    head-sampled still get coarse spans synthesized at completion (flag
//    kTailKept), so the interesting tail is never invisible.
//
// The ring is a seqlock-style structure where every word is an atomic:
// writers claim a slot with fetch_add, mark it odd (in progress), publish
// payload words, then mark it even with release; readers validate the
// sequence before and after copying and drop torn slots. No locks, no
// allocation on the hot path, TSan-clean by construction.
#ifndef NETCLUS_OBS_TRACE_H_
#define NETCLUS_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace netclus::obs {

/// Stage names; values index kSpanNames and pack into the ring payload.
enum class SpanName : uint8_t {
  kRequest = 0,   // whole request, enqueue → complete
  kQueue,         // admission queue wait
  kAdmit,         // StageAdmit: snapshot + plan + cache probes
  kCoverBuild,    // StageBuild: covering-set construction
  kSolve,         // greedy / solver stage
  kAssemble,      // result assembly
  kFinish,        // post-solve bookkeeping (cache insert, completion)
};
const char* SpanNameString(SpanName name);

/// Flags recorded on spans (bitwise OR).
enum SpanFlags : uint32_t {
  kFlagCacheHit = 1u << 0,
  kFlagStale = 1u << 1,
  kFlagShed = 1u << 2,
  kFlagError = 1u << 3,
  kFlagTailKept = 1u << 4,  // synthesized at completion, not head-sampled
  kFlagCoverShared = 1u << 5,
};

/// One completed span. Fixed-size and trivially copyable so it packs into
/// the atomic ring.
struct Span {
  uint64_t trace_id = 0;       // request id; links spans across lanes
  uint64_t start_ns = 0;       // monotonic, since process start
  uint64_t duration_ns = 0;
  uint64_t plan_fingerprint = 0;   // exec::PlanKey::Fingerprint()
  uint64_t snapshot_version = 0;
  SpanName name = SpanName::kRequest;
  uint8_t lane = 0;            // util::Lane the stage ran on
  uint32_t flags = 0;
  uint32_t thread_id = 0;      // hashed std::thread::id
};

/// Monotonic nanoseconds since the first call in this process.
uint64_t TraceNowNs();

/// Hashed id of the calling thread, stable within the process.
uint32_t TraceThreadId();

/// Bounded MPMC span sink; oldest entries are overwritten when full.
class SpanRing {
 public:
  /// `capacity` is rounded up to a power of two; default 8192 spans.
  explicit SpanRing(size_t capacity = 8192);

  void Push(const Span& span);

  /// Copies out the currently published spans, oldest first. Slots being
  /// written concurrently are skipped.
  std::vector<Span> Snapshot() const;

  /// Total spans ever pushed (including overwritten ones).
  uint64_t pushed() const { return head_.load(std::memory_order_relaxed); }

  size_t capacity() const { return mask_ + 1; }

 private:
  // 8 words: seq + 7 payload (span packs into 7).
  static constexpr size_t kWords = 7;
  // Deliberately unguarded seqlock slots: a reader may race a writer, but
  // every word is an individually atomic load/store, and Snapshot()
  // validates `seq` before and after copying a slot's words, dropping any
  // slot whose copy could be torn. Reads are therefore torn-tolerant by
  // protocol, not by luck — do not replace the seq dance with a mutex
  // (Push is on the request hot path and must stay wait-free).
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written; odd = in progress
    std::array<std::atomic<uint64_t>, kWords> words;
  };
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "SpanRing's seqlock assumes lock-free 64-bit atomics");

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  std::atomic<uint64_t> head_{0};
};

/// Owns the ring + sampling state. One per server; Global() for code with
/// no server context.
class Tracer {
 public:
  /// Reads NETCLUS_TRACE_SAMPLE (fraction in [0,1], default 0.01) and
  /// NETCLUS_TRACE_SEED (default 0) at construction.
  Tracer();
  Tracer(double sample_rate, uint64_t seed, size_t ring_capacity = 8192);

  static Tracer& Global();

  /// Draws the next request/trace id (monotonic, starts at 1).
  uint64_t NextTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Head-sampling decision: deterministic in (trace_id, seed, rate).
  bool Sampled(uint64_t trace_id) const;

  void SetSampleRate(double rate);
  double sample_rate() const {
    return sample_rate_.load(std::memory_order_relaxed);
  }
  void SetSeed(uint64_t seed) {
    seed_.store(seed, std::memory_order_relaxed);
  }

  void Record(const Span& span) { ring_.Push(span); }

  std::vector<Span> Snapshot() const { return ring_.Snapshot(); }
  uint64_t recorded() const { return ring_.pushed(); }

  /// Chrome trace_event JSON ({"traceEvents":[...]}); spans become "X"
  /// (complete) events with ts/dur in microseconds, tid = worker thread,
  /// and args carrying trace id, lane, snapshot version, plan fingerprint
  /// and flags.
  std::string DumpChromeTrace() const;

 private:
  SpanRing ring_;
  std::atomic<uint64_t> next_id_{0};
  // Torn-tolerant knobs: SetSampleRate/SetSeed may race Sampled(), which
  // then uses either the old or the new value for that one decision —
  // harmless, since sampling is best-effort by definition.
  std::atomic<double> sample_rate_;
  std::atomic<uint64_t> seed_;
  static_assert(std::atomic<double>::is_always_lock_free,
                "Tracer assumes lock-free atomic<double> sampling knobs");
};

/// Per-request span collector, carried on the request's async state. The
/// request's stages run sequentially (hand-offs go through the scheduler,
/// which provides happens-before), so a plain vector is safe here; spans
/// only reach the shared ring at Finish().
class TraceContext {
 public:
  TraceContext() = default;

  /// Binds this context to a tracer-issued id and sampling decision.
  void Start(Tracer* tracer, uint64_t trace_id, bool sampled) {
    tracer_ = tracer;
    trace_id_ = trace_id;
    sampled_ = sampled;
    start_ns_ = TraceNowNs();
  }

  bool sampled() const { return sampled_; }
  bool active() const { return tracer_ != nullptr; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t start_ns() const { return start_ns_; }

  void set_plan_fingerprint(uint64_t fp) { plan_fingerprint_ = fp; }
  void set_snapshot_version(uint64_t v) { snapshot_version_ = v; }
  void AddFlags(uint32_t flags) { flags_ |= flags; }
  uint32_t flags() const { return flags_; }

  /// Records one completed stage span (sampled requests only; no-op
  /// otherwise, so unsampled requests pay one branch per stage).
  void AddSpan(SpanName name, uint8_t lane, uint64_t start_ns,
               uint64_t end_ns);

  /// Emits collected spans plus the whole-request span to the ring. For
  /// unsampled requests, emits a coarse tail-kept Request+Queue pair only
  /// when `tail_keep` (slow/shed/error). Call exactly once, at completion.
  void Finish(uint8_t lane, bool tail_keep, uint64_t queue_end_ns);

 private:
  struct Pending {
    SpanName name;
    uint8_t lane;
    uint32_t thread_id;
    uint64_t start_ns;
    uint64_t end_ns;
  };

  Tracer* tracer_ = nullptr;
  uint64_t trace_id_ = 0;
  bool sampled_ = false;
  uint64_t start_ns_ = 0;
  uint64_t plan_fingerprint_ = 0;
  uint64_t snapshot_version_ = 0;
  uint32_t flags_ = 0;
  std::vector<Pending> pending_;
};

}  // namespace netclus::obs

#endif  // NETCLUS_OBS_TRACE_H_
