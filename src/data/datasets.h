// Named deterministic datasets: the stand-ins for Table 6.
//
// | name           | paper counterpart          | topology     |
// |----------------|----------------------------|--------------|
// | beijing-small  | Beijing-Small (1k/50)      | grid sample  |
// | beijing-lite   | Beijing (123k/269k)        | large grid   |
// | newyork        | New York (MNTG synthetic)  | radial star  |
// | atlanta        | Atlanta (MNTG synthetic)   | uniform mesh |
// | bangalore      | Bangalore (MNTG synthetic) | polycentric  |
//
// Sizes are scaled to laptop budgets (the paper's testbed ran hours-long
// offline builds); `scale` multiplies node and trajectory counts, and the
// NETCLUS_SCALE env var sets the default scale for benches. Every dataset
// is fully deterministic given (name, scale).
#ifndef NETCLUS_DATA_DATASETS_H_
#define NETCLUS_DATA_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/road_network.h"
#include "tops/site_set.h"
#include "traj/trajectory_store.h"

namespace netclus::data {

/// A self-contained benchmark dataset. The network lives behind a stable
/// pointer because the store references it.
struct Dataset {
  std::string name;
  std::unique_ptr<graph::RoadNetwork> network;
  std::unique_ptr<traj::TrajectoryStore> store;
  tops::SiteSet sites;

  size_t num_nodes() const { return network->num_nodes(); }
  size_t num_trajectories() const { return store->live_count(); }
  size_t num_sites() const { return sites.size(); }
};

/// The Beijing-Small analogue: a small dense sample for exact-optimum
/// comparisons (Fig. 4). ~1k trajectories, 50 candidate sites.
Dataset MakeBeijingSmall(double scale = 1.0, uint64_t seed = 17);

/// The main evaluation dataset (Beijing analogue): large grid, all nodes
/// candidate sites. scale = 1 gives ~10k nodes / ~15k trajectories.
Dataset MakeBeijingLite(double scale = 1.0, uint64_t seed = 23);

/// Star topology ("New York", Fig. 11).
Dataset MakeNewYork(double scale = 1.0, uint64_t seed = 29);

/// Mesh topology ("Atlanta", Fig. 11).
Dataset MakeAtlanta(double scale = 1.0, uint64_t seed = 31);

/// Polycentric topology ("Bangalore", Fig. 11).
Dataset MakeBangalore(double scale = 1.0, uint64_t seed = 37);

/// Dispatch by name ("beijing-small", "beijing-lite", "newyork", "atlanta",
/// "bangalore"). Dies on unknown names.
Dataset MakeByName(const std::string& name, double scale = 1.0);

/// Generates extra trajectories with a given along-path length window
/// (Fig. 12 length classes) into an existing dataset; returns ids.
std::vector<traj::TrajId> AddTrajectoriesWithLength(Dataset* dataset,
                                                    uint32_t count,
                                                    double min_length_m,
                                                    double max_length_m,
                                                    uint64_t seed);

}  // namespace netclus::data

#endif  // NETCLUS_DATA_DATASETS_H_
