#include "data/datasets.h"

#include <cmath>

#include "graph/generators.h"
#include "traj/trip_generator.h"
#include "util/logging.h"

namespace netclus::data {

namespace {

// Scales a linear dimension so that node counts scale ~linearly with
// `scale` (grids are two-dimensional).
uint32_t ScaleDim(uint32_t dim, double scale) {
  const double scaled = static_cast<double>(dim) * std::sqrt(std::max(0.01, scale));
  return std::max(4u, static_cast<uint32_t>(std::lround(scaled)));
}

uint32_t ScaleCount(uint32_t count, double scale) {
  return std::max(10u, static_cast<uint32_t>(std::lround(count * scale)));
}

Dataset Assemble(std::string name, graph::RoadNetwork network,
                 const traj::TripGeneratorConfig& trips, tops::SiteSet sites) {
  Dataset d;
  d.name = std::move(name);
  d.network = std::make_unique<graph::RoadNetwork>(std::move(network));
  d.store = std::make_unique<traj::TrajectoryStore>(d.network.get());
  traj::GenerateTrips(trips, d.store.get());
  d.sites = std::move(sites);
  NC_LOG_INFO << "dataset " << d.name << ": " << d.num_nodes() << " nodes, "
              << d.num_trajectories() << " trajectories, " << d.num_sites()
              << " sites";
  return d;
}

}  // namespace

Dataset MakeBeijingSmall(double scale, uint64_t seed) {
  graph::GridCityConfig grid;
  grid.rows = ScaleDim(24, scale);
  grid.cols = ScaleDim(24, scale);
  grid.block_m = 150.0;
  grid.seed = seed;
  graph::RoadNetwork net = graph::GenerateGridCity(grid);

  traj::TripGeneratorConfig trips;
  trips.num_trajectories = ScaleCount(1000, scale);
  trips.num_hotspots = 6;
  trips.hotspot_sigma_m = 400.0;
  trips.min_od_distance_m = 800.0;
  trips.seed = seed + 1;

  tops::SiteSet sites = tops::SiteSet::SampleNodes(
      net, std::min<size_t>(net.num_nodes(), ScaleCount(50, scale)), seed + 2);
  return Assemble("beijing-small", std::move(net), trips, std::move(sites));
}

Dataset MakeBeijingLite(double scale, uint64_t seed) {
  graph::GridCityConfig grid;
  grid.rows = ScaleDim(100, scale);
  grid.cols = ScaleDim(100, scale);
  grid.block_m = 150.0;
  grid.one_way_fraction = 0.25;
  grid.edge_drop_fraction = 0.05;
  grid.seed = seed;
  graph::RoadNetwork net = graph::GenerateGridCity(grid);

  traj::TripGeneratorConfig trips;
  trips.num_trajectories = ScaleCount(15000, scale);
  trips.num_hotspots = 12;
  trips.hotspot_sigma_m = 900.0;
  trips.min_od_distance_m = 2000.0;
  trips.seed = seed + 1;

  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  return Assemble("beijing-lite", std::move(net), trips, std::move(sites));
}

Dataset MakeNewYork(double scale, uint64_t seed) {
  graph::StarCityConfig star;
  star.num_rays = 9;
  star.nodes_per_ray = ScaleDim(70, scale);
  star.core_rows = ScaleDim(16, scale);
  star.core_cols = ScaleDim(16, scale);
  star.seed = seed;
  graph::RoadNetwork net = graph::GenerateStarCity(star);

  traj::TripGeneratorConfig trips;
  trips.num_trajectories = ScaleCount(10000, scale);
  trips.num_hotspots = 10;
  trips.hotspot_sigma_m = 700.0;
  trips.min_od_distance_m = 1500.0;
  trips.seed = seed + 1;

  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  return Assemble("newyork", std::move(net), trips, std::move(sites));
}

Dataset MakeAtlanta(double scale, uint64_t seed) {
  graph::GridCityConfig grid;
  grid.rows = ScaleDim(64, scale);
  grid.cols = ScaleDim(64, scale);
  grid.block_m = 180.0;
  grid.one_way_fraction = 0.15;
  grid.edge_drop_fraction = 0.03;
  grid.seed = seed;
  graph::RoadNetwork net = graph::GenerateGridCity(grid);

  traj::TripGeneratorConfig trips;
  trips.num_trajectories = ScaleCount(10000, scale);
  // Mesh city, flow spread out: many weak hotspots + high background.
  trips.num_hotspots = 24;
  trips.hotspot_sigma_m = 1200.0;
  trips.background_fraction = 0.5;
  trips.min_od_distance_m = 1500.0;
  trips.seed = seed + 1;

  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  return Assemble("atlanta", std::move(net), trips, std::move(sites));
}

Dataset MakeBangalore(double scale, uint64_t seed) {
  graph::PolycentricCityConfig poly;
  poly.num_centers = 6;
  poly.patch_rows = ScaleDim(22, scale);
  poly.patch_cols = ScaleDim(22, scale);
  poly.seed = seed;
  graph::RoadNetwork net = graph::GeneratePolycentricCity(poly);

  traj::TripGeneratorConfig trips;
  trips.num_trajectories = ScaleCount(10000, scale);
  // Polycentric: flow concentrates between district centers.
  trips.num_hotspots = 8;
  trips.hotspot_sigma_m = 600.0;
  trips.background_fraction = 0.1;
  trips.min_od_distance_m = 2500.0;
  trips.seed = seed + 1;

  tops::SiteSet sites = tops::SiteSet::AllNodes(net);
  return Assemble("bangalore", std::move(net), trips, std::move(sites));
}

Dataset MakeByName(const std::string& name, double scale) {
  if (name == "beijing-small") return MakeBeijingSmall(scale);
  if (name == "beijing-lite") return MakeBeijingLite(scale);
  if (name == "newyork") return MakeNewYork(scale);
  if (name == "atlanta") return MakeAtlanta(scale);
  if (name == "bangalore") return MakeBangalore(scale);
  NC_LOG_FATAL << "unknown dataset: " << name;
  return {};
}

std::vector<traj::TrajId> AddTrajectoriesWithLength(Dataset* dataset,
                                                    uint32_t count,
                                                    double min_length_m,
                                                    double max_length_m,
                                                    uint64_t seed) {
  traj::TripGeneratorConfig trips;
  trips.num_trajectories = count;
  trips.num_hotspots = 10;
  trips.hotspot_sigma_m = 800.0;
  trips.min_od_distance_m = min_length_m * 0.3;
  trips.min_length_m = min_length_m;
  trips.max_length_m = max_length_m;
  trips.seed = seed;
  return traj::GenerateTrips(trips, dataset->store.get());
}

}  // namespace netclus::data
