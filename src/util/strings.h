// Small string helpers shared across modules (IO parsers, table printer).
#ifndef NETCLUS_UTIL_STRINGS_H_
#define NETCLUS_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace netclus::util {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_STRINGS_H_
