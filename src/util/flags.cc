#include "util/flags.h"

#include <cstdlib>

#include "util/strings.h"

namespace netclus::util {

int64_t GetEnvInt(const char* name, int64_t def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return (end == value) ? def : static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end == value) ? def : parsed;
}

std::string GetEnvString(const char* name, const std::string& def) {
  const char* value = std::getenv(name);
  return value == nullptr ? def : std::string(value);
}

bool GetEnvBool(const char* name, bool def) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return def;
  const std::string v = ToLower(value);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

double DatasetScale() { return GetEnvDouble("NETCLUS_SCALE", 1.0); }

unsigned ThreadCount() {
  const int64_t env = GetEnvInt("NETCLUS_THREADS", 1);
  if (env < 1) return 1;
  return static_cast<unsigned>(
      env > static_cast<int64_t>(kMaxThreads) ? kMaxThreads : env);
}

}  // namespace netclus::util
