// Memory accounting.
//
// Two complementary mechanisms:
//  * Process-level: VmRSS / VmHWM read from /proc/self/status. Used by the
//    benchmark harness for whole-process numbers (Table 9 / Table 12).
//  * Structure-level: MemoryTracker, an analytic byte counter that major data
//    structures (coverage index, cluster instances) report into. This is what
//    lets the Table 9 reproduction show the O(mn) covering-set blow-up even
//    on machines with plenty of RAM, and lets a MemoryBudget declare an
//    algorithm "out of memory" deterministically, mirroring the paper's 32 GB
//    testbed cutoff.
#ifndef NETCLUS_UTIL_MEMORY_H_
#define NETCLUS_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace netclus::util {

/// Current resident set size of this process in bytes (0 if unavailable).
uint64_t ReadVmRssBytes();

/// Peak resident set size of this process in bytes (0 if unavailable).
uint64_t ReadVmHwmBytes();

/// Analytic byte counter keyed by component name.
class MemoryTracker {
 public:
  /// Adds (or subtracts, via negative delta) bytes under `component`.
  void Add(const std::string& component, int64_t bytes);

  /// Replaces the byte count recorded under `component`.
  void Set(const std::string& component, uint64_t bytes);

  /// Total bytes across all components.
  uint64_t TotalBytes() const;

  /// Bytes recorded under `component` (0 if absent).
  uint64_t Bytes(const std::string& component) const;

  /// Component -> bytes snapshot, for reports.
  const std::map<std::string, uint64_t>& components() const {
    return components_;
  }

  void Clear() { components_.clear(); }

 private:
  std::map<std::string, uint64_t> components_;
};

/// Deterministic "out of memory" guard: algorithms consult the budget while
/// building their covering structures and abort cleanly when exceeded. A
/// budget of 0 means unlimited.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Charges `bytes`; returns false once the cumulative charge exceeds the
  /// limit (the algorithm should then stop and report infeasibility).
  bool Charge(uint64_t bytes) {
    used_ += bytes;
    return limit_ == 0 || used_ <= limit_;
  }

  bool exceeded() const { return limit_ != 0 && used_ > limit_; }
  uint64_t used_bytes() const { return used_; }
  uint64_t limit_bytes() const { return limit_; }

 private:
  uint64_t limit_;
  uint64_t used_ = 0;
};

/// Deep byte footprint of a vector (capacity-based, element payload only).
template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

/// Deep byte footprint of a vector of vectors.
template <typename T>
uint64_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  uint64_t total = static_cast<uint64_t>(v.capacity()) * sizeof(std::vector<T>);
  for (const auto& inner : v) total += VectorBytes(inner);
  return total;
}

/// Human-readable byte count, e.g. "3.22 GB".
std::string HumanBytes(uint64_t bytes);

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_MEMORY_H_
