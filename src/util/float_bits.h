// Bit-pattern equality for floating-point distance values.
//
// The repo's determinism guarantee is bit-identical results across thread
// counts, SPF backends, index formats, and cache modes — so wherever two
// distances are compared for *identity* (tie-breaks in strict-weak
// orderings, before/after change detection), the comparison is exact by
// design, never tolerance-based. tools/netclus_lint.py rejects a raw
// `==`/`!=` between distance-typed expressions; these helpers are the
// sanctioned spelling, making every such site greppable and its intent
// explicit.
//
// BitEqual compares the object representation: NaN == NaN, and -0.0 !=
// 0.0. Distances in this codebase are sums/mins of nonnegative finite
// values (or exactly graph::kInfDistance), so neither NaN nor -0.0
// arises and BitEqual agrees with `==` on every value actually compared;
// the bit form is used because it states the contract (same computation
// ⇒ same bits) rather than accidentally depending on IEEE edge cases.
#ifndef NETCLUS_UTIL_FLOAT_BITS_H_
#define NETCLUS_UTIL_FLOAT_BITS_H_

#include <bit>
#include <cstdint>

namespace netclus::util {

inline uint64_t DoubleBits(double d) { return std::bit_cast<uint64_t>(d); }
inline uint32_t FloatBits(float f) { return std::bit_cast<uint32_t>(f); }

inline bool BitEqual(double a, double b) {
  return DoubleBits(a) == DoubleBits(b);
}
inline bool BitEqual(float a, float b) { return FloatBits(a) == FloatBits(b); }

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_FLOAT_BITS_H_
