// Thread-safe latency histogram with geometric buckets.
//
// Serving code records one sample per query from many threads at once, so
// Record() is a single relaxed atomic increment on a fixed bucket array —
// no locks, no allocation. Percentile queries walk the buckets and return
// the geometric midpoint of the bucket holding the requested rank, which
// bounds the relative error by the bucket growth factor (~9% per side).
//
// Readers and writers may overlap; a percentile computed during a burst of
// recording reflects *some* recent prefix of the samples, which is the
// usual contract for serving stats.
#ifndef NETCLUS_UTIL_HISTOGRAM_H_
#define NETCLUS_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace netclus::util {

/// Histogram over positive durations in seconds. Buckets are geometric
/// from kMinSeconds to kMaxSeconds; out-of-range samples clamp to the
/// extreme buckets.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 96;
  static constexpr double kMinSeconds = 1e-7;   // 100 ns
  static constexpr double kMaxSeconds = 100.0;

  LatencyHistogram();

  /// Records one sample. Lock-free; callable from any thread.
  void Record(double seconds);

  /// Number of samples recorded (including overflow samples).
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Samples that exceeded kMaxSeconds. These sit past every bucket: a
  /// percentile whose rank lands among them reports kMaxSeconds, so p999
  /// cannot be silently dragged *down* by a clamp into the last bucket's
  /// midpoint.
  uint64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// Mean of all samples, seconds (0 when empty).
  double MeanSeconds() const;

  /// Approximate p-th percentile (p in [0, 1]), seconds. 0 when empty.
  double PercentileSeconds(double p) const;

  /// Raw count in bucket i (for exporters that need the full shape, e.g.
  /// Prometheus cumulative-bucket output).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper edge of bucket i in seconds: kMinSeconds * r^(i+1).
  static double BucketUpperSeconds(size_t i);

  /// Sum of all recorded samples, seconds.
  double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }

  /// Resets all buckets to empty.
  void Reset();

 private:
  size_t BucketFor(double seconds) const;

  // Deliberately unguarded: reads are torn-tolerant. A reader overlapping
  // a burst of Record() calls may see bucket counts from different
  // instants (count_ bumped but the bucket not yet, or vice versa); every
  // individual word is still atomic, so the result is an approximate
  // percentile over *some* recent prefix — exactly the documented
  // contract above — never undefined behavior. Do not "fix" this with a
  // mutex; Record() is on the per-query hot path.
  std::array<std::atomic<uint64_t>, kBuckets> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> overflow_;
  std::atomic<uint64_t> total_ns_;

  // The lock-free contract above is only real if the hardware backs it;
  // on a platform where uint64_t atomics take a hidden lock, Record()
  // would silently stop being safe from signal-handler-like contexts.
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "LatencyHistogram assumes lock-free 64-bit atomics");
};

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_HISTOGRAM_H_
