// Deterministic random number generation.
//
// All stochastic components of the library (dataset generators, FM sketch
// hash seeds, cost/capacity draws) are driven by explicit 64-bit seeds so
// that every experiment in the paper-reproduction harness is replayable.
#ifndef NETCLUS_UTIL_RNG_H_
#define NETCLUS_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace netclus::util {

/// SplitMix64: fast stateless mixing, used for seeding and hashing.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** PRNG. Small, fast, and good enough for simulation work.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9d2c5680cafe1234ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  /// Next raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (no state caching; simple and adequate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Bernoulli with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// All weights must be non-negative and not all zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct values from [0, n). count must be <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t count);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_RNG_H_
