#include "util/table.h"

#include <algorithm>
#include <iomanip>

#include "util/logging.h"
#include "util/strings.h"

namespace netclus::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  NC_CHECK(!rows_.empty()) << "call Row() before Cell()";
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(const char* value) { return Cell(std::string(value)); }

Table& Table::Cell(double value, int precision) {
  return Cell(StrFormat("%.*f", precision, value));
}

Table& Table::Cell(uint64_t value) { return Cell(StrFormat("%lu", value)); }

Table& Table::Cell(int64_t value) { return Cell(StrFormat("%ld", value)); }

Table& Table::Cell(int value) { return Cell(StrFormat("%d", value)); }

void Table::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  os << Join(headers_, ",") << "\n";
  for (const auto& row : rows_) os << Join(row, ",") << "\n";
}

void Table::PrintMarkdown(std::ostream& os) const {
  os << "| " << Join(headers_, " | ") << " |\n|";
  for (size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) os << "| " << Join(row, " | ") << " |\n";
}

}  // namespace netclus::util
