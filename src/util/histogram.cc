#include "util/histogram.h"

#include <cmath>

namespace netclus::util {

namespace {

// Growth factor r with kBuckets buckets spanning [kMinSeconds, kMaxSeconds]:
// r = (max/min)^(1/kBuckets).
double Growth() {
  static const double r =
      std::pow(LatencyHistogram::kMaxSeconds / LatencyHistogram::kMinSeconds,
               1.0 / static_cast<double>(LatencyHistogram::kBuckets));
  return r;
}

double LogGrowth() {
  static const double lg = std::log(Growth());
  return lg;
}

}  // namespace

LatencyHistogram::LatencyHistogram() { Reset(); }

double LatencyHistogram::BucketUpperSeconds(size_t i) {
  return kMinSeconds * std::exp(static_cast<double>(i + 1) * LogGrowth());
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketFor(double seconds) const {
  if (!(seconds > kMinSeconds)) return 0;
  const double idx = std::log(seconds / kMinSeconds) / LogGrowth();
  if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<size_t>(idx);
}

void LatencyHistogram::Record(double seconds) {
  if (seconds > kMaxSeconds) {
    // Past the last bucket edge: tracked separately instead of clamped so
    // the tail percentiles stay honest (see PercentileSeconds).
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  // Saturate before the cast: a double above uint64 range (or NaN, which
  // fails the > 0 test) must clamp, not hit an unrepresentable-value cast
  // (UB). 2^63 ns ≈ 292 years — saturation cannot matter in practice.
  double ns = seconds * 1e9;
  constexpr double kMaxNs = 9.2e18;
  if (!(ns > 0.0)) ns = 0.0;
  if (ns > kMaxNs) ns = kMaxNs;
  total_ns_.fetch_add(static_cast<uint64_t>(ns), std::memory_order_relaxed);
}

double LatencyHistogram::MeanSeconds() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) / 1e9 /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileSeconds(double p) const {
  // Snapshot the buckets once and derive the total from that snapshot —
  // not from count_, which is a separate relaxed atomic and may run ahead
  // of the bucket increments under concurrent Record() calls. The rank
  // can then never exceed what the walk below can see.
  std::array<uint64_t, kBuckets> counts;
  uint64_t in_range = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    in_range += counts[i];
  }
  const uint64_t total = in_range + overflow_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  // Clamp negated so NaN lands at 0 instead of flowing into the uint64
  // cast below (unrepresentable-value casts are UB).
  if (!(p >= 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested sample (1-based), then walk buckets.
  const uint64_t rank = static_cast<uint64_t>(std::ceil(
      p * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank && seen > 0) {
      // Geometric midpoint of bucket i: min * r^(i + 0.5).
      return kMinSeconds *
             std::exp((static_cast<double>(i) + 0.5) * LogGrowth());
    }
  }
  // Rank lands among the overflow samples (> kMaxSeconds); report the
  // range ceiling rather than some in-range bucket midpoint.
  return kMaxSeconds;
}

}  // namespace netclus::util
