// Clang Thread Safety Analysis macros + annotated mutex wrappers.
//
// Every mutex in src/ is an nc::Mutex (or nc::RecursiveMutex), every
// scoped lock an nc::MutexLock, and every condition variable an
// nc::CondVar, so that `clang++ -Wthread-safety -Werror` proves the
// repo's lock discipline at compile time (docs/static_analysis.md):
//
//   * fields annotated GUARDED_BY(mu_) can only be touched with mu_ held;
//   * `*Locked()` helpers annotated REQUIRES(mu_) can only be called with
//     mu_ held — the class of bug PRs 6-8 fixed reactively (in-flight
//     eviction breaking the cover rendezvous, stale-serve nested in the
//     wrong guard) becomes a compile error;
//   * public entry points annotated EXCLUDES(mu_) self-deadlock-check.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing and the wrappers compile down to the std primitives they hold —
// zero cost in Release, no behavior change anywhere. tools/netclus_lint.py
// enforces that no raw std::mutex appears outside this header.
//
// Condition-variable waits: write the loop out explicitly so the analysis
// sees the guarded reads under the held capability —
//
//   nc::MutexLock lock(mu_);
//   while (!done_) cv_.Wait(lock);   // NOT cv_.wait(lock, [&]{...});
//
// (a predicate lambda is analyzed as its own function, where the
// capability is not visibly held).
#ifndef NETCLUS_UTIL_THREAD_ANNOTATIONS_H_
#define NETCLUS_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

// --- Clang TSA attribute macros (no-ops under GCC/MSVC) ---------------------

#if defined(__clang__) && defined(__has_attribute)
#define NC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define NC_THREAD_ANNOTATION__(x)  // not supported by this compiler
#endif

/// Marks a type as a lockable capability ("mutex").
#define CAPABILITY(x) NC_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY NC_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding the given capability.
#define GUARDED_BY(x) NC_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the given capability.
#define PT_GUARDED_BY(x) NC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability held on entry (…and still on exit) —
/// the annotation for `*Locked()` helpers.
#define REQUIRES(...) \
  NC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define ACQUIRE(...) NC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NC_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) NC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NC_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  NC_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (self-deadlock guard on public
/// entry points that lock internally).
#define EXCLUDES(...) NC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held.
#define ASSERT_CAPABILITY(x) NC_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) NC_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch; every use needs a rationale comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  NC_THREAD_ANNOTATION__(no_thread_safety_analysis)

// --- annotated wrappers ------------------------------------------------------

namespace nc {

/// std::mutex with capability annotations. Immovable, like std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// std::recursive_mutex with capability annotations. Used where callbacks
/// legitimately re-enter the owning registry (serve/standing.h). The
/// analysis treats each function's acquire/release locally, so reentrant
/// acquisition across call frames is permitted exactly as at runtime.
class CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class RecursiveMutexLock;
  std::recursive_mutex mu_;
};

/// Scoped lock over nc::Mutex (the lock_guard / unique_lock of this
/// codebase). Holds a std::unique_lock so nc::CondVar can wait on it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() {}  // unique_lock's destructor unlocks

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped lock over nc::RecursiveMutex.
class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) ACQUIRE(mu)
      : lock_(mu.mu_) {}
  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;
  ~RecursiveMutexLock() RELEASE() {}

 private:
  std::lock_guard<std::recursive_mutex> lock_;
};

/// Condition variable paired with nc::Mutex / nc::MutexLock. Wait()
/// atomically releases and reacquires the lock at the std level; to the
/// analysis the capability is held throughout (the same model Abseil
/// uses), which is sound because the caller re-checks its predicate in a
/// loop under the reacquired lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nc

#endif  // NETCLUS_UTIL_THREAD_ANNOTATIONS_H_
