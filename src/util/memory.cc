#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace netclus::util {

namespace {

// Parses "VmRSS:     123 kB" style lines from /proc/self/status.
uint64_t ReadStatusField(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, " %lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

uint64_t ReadVmRssBytes() { return ReadStatusField("VmRSS:"); }

uint64_t ReadVmHwmBytes() { return ReadStatusField("VmHWM:"); }

void MemoryTracker::Add(const std::string& component, int64_t bytes) {
  uint64_t& slot = components_[component];
  if (bytes >= 0) {
    slot += static_cast<uint64_t>(bytes);
  } else {
    const uint64_t dec = static_cast<uint64_t>(-bytes);
    slot = dec >= slot ? 0 : slot - dec;
  }
}

void MemoryTracker::Set(const std::string& component, uint64_t bytes) {
  components_[component] = bytes;
}

uint64_t MemoryTracker::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, bytes] : components_) total += bytes;
  return total;
}

uint64_t MemoryTracker::Bytes(const std::string& component) const {
  auto it = components_.find(component);
  return it == components_.end() ? 0 : it->second;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

}  // namespace netclus::util
