// Deterministic parallel execution: a fixed-size ThreadPool plus chunked
// ParallelFor / ParallelMap / ParallelReduce helpers.
//
// Scheduling contract (docs/parallelism.md):
//  * Work over [0, n) is split into chunks of a fixed grain. The chunk
//    layout depends only on (n, grain) — never on the thread count — so a
//    ParallelReduce with a fixed grain combines partial results in the same
//    order at 1 thread and at 64 threads, and floating-point results are
//    bit-identical across thread counts.
//  * Chunks may execute in any order and on any worker, but every helper
//    commits results in ascending chunk order (ParallelMap writes to
//    pre-sized slots; ParallelReduce combines partials left to right).
//  * A helper invoked on a pool worker thread runs inline (sequentially, in
//    chunk order). This makes nesting safe — an outer parallel loop over
//    index instances can call code with inner parallel loops — without
//    deadlocking the pool.
//  * Exceptions thrown by a body are captured and rethrown on the calling
//    thread; once any chunk throws, unclaimed chunks are not started.
//    Chunks are claimed in ascending order, so every chunk below a throwing
//    chunk still runs — the exception of the lowest-numbered throwing chunk
//    wins (again independent of thread count).
//
// The thread count convention used across the library: `threads == 0` means
// "use the NETCLUS_THREADS environment default" (itself defaulting to 1),
// and `threads == 1` is exactly the serial code path.
#ifndef NETCLUS_UTIL_PARALLEL_H_
#define NETCLUS_UTIL_PARALLEL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace netclus::util {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
/// Destruction drains the queue: tasks already submitted all run before the
/// workers join.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Must not be called during/after destruction.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// True when the calling thread is a worker of *any* ThreadPool. The
  /// parallel helpers use this to run inline instead of re-entering a pool.
  static bool OnWorkerThread();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  nc::Mutex mu_;
  nc::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// The NETCLUS_THREADS environment default (>= 1; unset means 1, i.e. the
/// serial behavior of the library before the parallel subsystem existed).
unsigned DefaultThreads();

/// Resolves the 0-means-default convention: 0 -> DefaultThreads(). Explicit
/// counts are clamped to 256, same as the environment default — a config
/// typo must not translate into an unbounded std::thread spawn.
unsigned ResolveThreads(unsigned threads);

/// True when a parallel helper called here with `threads` would execute
/// inline (serial resolution, or already on a pool worker). Callers with
/// expensive per-chunk setup (Dijkstra engines, O(n) scratch) use this to
/// collapse to a single chunk in the inline case.
bool RunsInline(unsigned threads);

/// Grain for loops whose chunks carry expensive setup (a Dijkstra engine,
/// O(n) scratch arrays): one chunk when the call would run inline, else
/// ~`chunks_per_thread` chunks per worker. Results must not depend on the
/// chunk layout when using this (true of every such loop in this repo),
/// since the layout varies with the thread count.
size_t CoarseGrain(unsigned threads, size_t n, unsigned chunks_per_thread = 4);

/// Chunk grain actually used for `n` items: `grain` when positive, else a
/// default that depends only on `n` (targets ~64 chunks). Exposed so tests
/// can pin the layout.
size_t EffectiveGrain(size_t n, size_t grain);

/// Runs `body(begin, end)` over consecutive chunks covering [0, n).
/// Sequential (in ascending chunk order) when `threads` resolves to 1, when
/// there is a single chunk, or when called from a pool worker; otherwise the
/// chunks are executed by a shared pool plus the calling thread.
void ParallelFor(unsigned threads, size_t n,
                 const std::function<void(size_t begin, size_t end)>& body,
                 size_t grain = 0);

/// Maps `fn(i)` over [0, n) into a vector in index order (stable regardless
/// of thread count).
template <typename T, typename MapFn>
std::vector<T> ParallelMap(unsigned threads, size_t n, MapFn&& fn,
                           size_t grain = 0) {
  // std::vector<bool> packs elements into shared words, so concurrent
  // per-slot writes would race; map to uint8_t instead.
  static_assert(!std::is_same_v<T, bool>,
                "ParallelMap<bool> races on vector<bool>'s packed storage");
  std::vector<T> out(n);
  ParallelFor(
      threads, n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      grain);
  return out;
}

/// Chunked reduction: `chunk_fn(begin, end) -> T` per chunk, partials
/// combined with `combine(acc, partial)` in ascending chunk order starting
/// from `identity`. With a fixed grain the result is bit-identical across
/// thread counts (the chunk layout and the combine order never change).
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(unsigned threads, size_t n, T identity, ChunkFn&& chunk_fn,
                 CombineFn&& combine, size_t grain = 0) {
  static_assert(!std::is_same_v<T, bool>,
                "ParallelReduce<bool> races on vector<bool>'s packed storage");
  if (n == 0) return identity;
  const size_t g = EffectiveGrain(n, grain);
  const size_t num_chunks = (n + g - 1) / g;
  std::vector<T> partial(num_chunks, identity);
  ParallelFor(
      threads, n,
      [&](size_t begin, size_t end) { partial[begin / g] = chunk_fn(begin, end); },
      g);
  T acc = identity;
  for (size_t c = 0; c < num_chunks; ++c) acc = combine(acc, partial[c]);
  return acc;
}

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_PARALLEL_H_
