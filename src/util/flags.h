// Environment-variable driven configuration for benches and examples.
//
// Benches must run unattended (`for b in build/bench/*; do $b; done`), so all
// knobs default to paper values and are overridable via NETCLUS_* env vars,
// e.g. NETCLUS_SCALE=0.25 shrinks every dataset by 4x.
#ifndef NETCLUS_UTIL_FLAGS_H_
#define NETCLUS_UTIL_FLAGS_H_

#include <cstdint>
#include <string>

namespace netclus::util {

/// Returns the env var `name` as int64, or `def` if unset/unparseable.
int64_t GetEnvInt(const char* name, int64_t def);

/// Returns the env var `name` as double, or `def` if unset/unparseable.
double GetEnvDouble(const char* name, double def);

/// Returns the env var `name`, or `def` if unset.
std::string GetEnvString(const char* name, const std::string& def);

/// Returns the env var `name` as bool ("1", "true", "yes" => true).
bool GetEnvBool(const char* name, bool def);

/// Global dataset scale factor (NETCLUS_SCALE, default 1.0). Dataset
/// generators multiply node/trajectory counts by this.
double DatasetScale();

/// Hard ceiling on any thread count, env-configured or API-configured: a
/// config typo must not become an unbounded std::thread spawn.
inline constexpr unsigned kMaxThreads = 256;

/// Global worker-thread default (NETCLUS_THREADS, default 1 = serial,
/// clamped to [1, kMaxThreads]). Every `threads = 0` knob in the library
/// resolves to this.
unsigned ThreadCount();

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_FLAGS_H_
