#include "util/scheduler.h"

#include <algorithm>
#include <utility>

#include "util/flags.h"
#include "util/logging.h"

namespace netclus::util {

namespace {

// Identifies the owning scheduler (and worker slot) of the calling
// thread, so Submit can route continuations to the caller's own deque.
struct WorkerIdentity {
  const StagedScheduler* scheduler = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tl_worker;

uint32_t ResolveWorkers(uint32_t workers) {
  if (workers == 0) {
    const int64_t env = GetEnvInt("NETCLUS_SCHED_WORKERS", 0);
    if (env > 0) {
      workers = static_cast<uint32_t>(env);
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      workers = std::max(2u, std::min(hw == 0 ? 2u : hw, 8u));
    }
  }
  return std::clamp(workers, 1u, kMaxThreads);
}

}  // namespace

StagedScheduler::StagedScheduler(const Options& options)
    : start_(std::chrono::steady_clock::now()) {
  const uint32_t n = ResolveWorkers(options.workers);
  worker_state_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    worker_state_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StagedScheduler::~StagedScheduler() { Shutdown(); }

bool StagedScheduler::OnWorker() const {
  return tl_worker.scheduler == this;
}

bool StagedScheduler::Submit(Lane lane, std::function<void()> task) {
  const bool on_worker = OnWorker();
  if (on_worker && lane == Lane::kFast) {
    // A fast continuation from a running stage: LIFO onto the worker's
    // own deque for locality. Allowed even mid-drain — the drain
    // guarantee is precisely that running chains may keep extending
    // themselves.
    //
    // outstanding_ must be bumped *before* the task becomes claimable:
    // a sibling that steals and finishes the task would otherwise
    // decrement outstanding_ ahead of our increment, underflowing the
    // size_t drain counter. Holding ws.mu across the mu_ bump keeps the
    // task unpublished until the count covers it (lock order ws.mu ->
    // mu_; no path takes them in the reverse order).
    WorkerState& ws = *worker_state_[tl_worker.index];
    {
      const nc::MutexLock ws_lock(ws.mu);
      {
        const nc::MutexLock lock(mu_);
        ++outstanding_;
        ++work_epoch_;
      }
      ws.deque.push_back(std::move(task));
    }
    cv_.NotifyOne();
    return true;
  }
  // Normal/heavy work always goes through the lane injectors — even from
  // a worker. Otherwise a heavy continuation lands on the local deque,
  // where it is claimed LIFO ahead of queued fast work (inverting the
  // lane priority) and is invisible to QueueDepth, which the serving
  // layer's backpressure reads to decide when to shed cover builds.
  {
    const nc::MutexLock lock(mu_);
    // Only *external* submits are refused once stopping; worker-side
    // submits stay allowed during the drain.
    if (!on_worker && stop_.load(std::memory_order_relaxed)) return false;
    injector_[static_cast<size_t>(lane)].push_back(std::move(task));
    ++outstanding_;
    ++work_epoch_;
  }
  injected_[static_cast<size_t>(lane)].fetch_add(1, std::memory_order_relaxed);
  cv_.NotifyOne();
  return true;
}

size_t StagedScheduler::QueueDepth(Lane lane) const {
  const nc::MutexLock lock(mu_);
  return injector_[static_cast<size_t>(lane)].size();
}

bool StagedScheduler::TryClaim(size_t self, std::function<void()>* task,
                               bool* stolen, size_t* lane_idx) {
  *stolen = false;
  *lane_idx = 0;  // deque/steal claims are always fast continuations
  {
    WorkerState& ws = *worker_state_[self];
    const nc::MutexLock lock(ws.mu);
    if (!ws.deque.empty()) {
      *task = std::move(ws.deque.back());
      ws.deque.pop_back();
      return true;
    }
  }
  {
    const nc::MutexLock lock(mu_);
    // Lane order is the priority rule: fast work is claimed before any
    // queued heavy work, every time a worker frees up.
    for (size_t i = 0; i < kLanes; ++i) {
      auto& lane = injector_[i];
      if (!lane.empty()) {
        *task = std::move(lane.front());
        lane.pop_front();
        *lane_idx = i;
        return true;
      }
    }
  }
  // Steal the *oldest* task of a sibling (FIFO end): the victim keeps
  // its cache-warm recent continuations, the thief takes the stalest.
  for (size_t off = 1; off < worker_state_.size(); ++off) {
    WorkerState& victim = *worker_state_[(self + off) % worker_state_.size()];
    const nc::MutexLock lock(victim.mu);
    if (!victim.deque.empty()) {
      *task = std::move(victim.deque.front());
      victim.deque.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void StagedScheduler::WorkerLoop(size_t self) {
  tl_worker = WorkerIdentity{this, self};
  for (;;) {
    uint64_t epoch;
    {
      const nc::MutexLock lock(mu_);
      epoch = work_epoch_;
    }
    std::function<void()> task;
    bool stolen = false;
    size_t lane_idx = 0;
    if (TryClaim(self, &task, &stolen, &lane_idx)) {
      if (stolen) stolen_.fetch_add(1, std::memory_order_relaxed);
      const auto task_start = std::chrono::steady_clock::now();
      try {
        task();
      } catch (const std::exception& e) {
        // A stage must complete its own request; an escaped exception is
        // a bug, but killing the worker (std::terminate) would take the
        // whole service with it.
        NC_LOG_ERROR << "StagedScheduler: task threw: " << e.what();
      } catch (...) {
        NC_LOG_ERROR << "StagedScheduler: task threw a non-std exception";
      }
      task = nullptr;  // drop captured state before signaling completion
      busy_ns_.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - task_start)
                  .count()),
          std::memory_order_relaxed);
      executed_lane_[lane_idx].fetch_add(1, std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
      {
        const nc::MutexLock lock(mu_);
        --outstanding_;
        if (outstanding_ == 0 && stop_.load(std::memory_order_relaxed)) {
          cv_.NotifyAll();
        }
      }
      continue;
    }
    nc::MutexLock lock(mu_);
    while (work_epoch_ == epoch &&
           !(stop_.load(std::memory_order_relaxed) && outstanding_ == 0)) {
      cv_.Wait(lock);
    }
    if (stop_.load(std::memory_order_relaxed) && outstanding_ == 0) return;
  }
}

void StagedScheduler::Shutdown() {
  {
    const nc::MutexLock lock(mu_);
    stop_.store(true, std::memory_order_release);
    ++work_epoch_;  // wake sleepers so they observe the stop
  }
  cv_.NotifyAll();
  // Joining is single-owner territory (the server's Shutdown/destructor);
  // joinable() keeps the second call a no-op.
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

StagedScheduler::Stats StagedScheduler::stats() const {
  Stats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kLanes; ++i) {
    s.injected[i] = injected_[i].load(std::memory_order_relaxed);
    s.executed_lane[i] = executed_lane_[i].load(std::memory_order_relaxed);
  }
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  s.uptime_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  const double capacity =
      s.uptime_seconds * static_cast<double>(workers_.size());
  s.utilization =
      capacity > 0.0 ? (static_cast<double>(s.busy_ns) / 1e9) / capacity : 0.0;
  return s;
}

}  // namespace netclus::util
