#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace netclus::util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace netclus::util
