#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace netclus::util {

double Rng::Normal() {
  // Box-Muller; u1 is bounded away from zero to keep log() finite.
  double u1 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double rate) {
  NC_CHECK_GT(rate, 0.0);
  double u = Uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  NC_CHECK(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  NC_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t count) {
  NC_CHECK_LE(count, n);
  // Floyd's algorithm would avoid the O(n) init, but n is small enough in all
  // callers that the simple partial Fisher-Yates is clearer.
  std::vector<uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t j = i + static_cast<uint32_t>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace netclus::util
