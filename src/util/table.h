// Aligned text/CSV table printer used by the benchmark harness to emit
// paper-shaped tables (rows of Table 7..12, series of Fig. 4..12).
#ifndef NETCLUS_UTIL_TABLE_H_
#define NETCLUS_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace netclus::util {

/// Collects rows of string cells and renders them as an aligned text table
/// or CSV. Numeric convenience overloads format with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new empty row; subsequent Cell() calls append to it.
  Table& Row();

  Table& Cell(const std::string& value);
  Table& Cell(const char* value);
  Table& Cell(double value, int precision = 2);
  Table& Cell(uint64_t value);
  Table& Cell(int64_t value);
  Table& Cell(int value);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with space padding and a header underline.
  void PrintText(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting of embedded commas; cells in
  /// this codebase never contain commas).
  void PrintCsv(std::ostream& os) const;

  /// Renders as a GitHub-flavored markdown table.
  void PrintMarkdown(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_TABLE_H_
