// Lightweight leveled logging for the NetClus library.
//
// Usage:
//   NC_LOG_INFO << "built index with " << n << " clusters";
//   util::SetLogLevel(util::LogLevel::kWarning);   // silence info logs
//
// Log lines are written to stderr with a monotonic timestamp so that
// interleaving with benchmark output on stdout stays readable.
#ifndef NETCLUS_UTIL_LOGGING_H_
#define NETCLUS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace netclus::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level below which log lines are dropped.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum log level.
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warning", "error", "fatal").
/// Unknown names return kInfo.
LogLevel ParseLogLevel(const std::string& name);

namespace internal {

// Accumulates one log line and flushes it on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the line is below the active level.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

}  // namespace netclus::util

#define NC_LOG_AT_LEVEL(level)                                            \
  (level) < ::netclus::util::GetLogLevel()                                \
      ? (void)0                                                           \
      : ::netclus::util::internal::LogMessageVoidify() &                  \
            ::netclus::util::internal::LogMessage((level), __FILE__,      \
                                                  __LINE__)               \
                .stream()

#define NC_LOG_DEBUG NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kDebug)
#define NC_LOG_INFO NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kInfo)
#define NC_LOG_WARNING NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kWarning)
#define NC_LOG_ERROR NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kError)
#define NC_LOG_FATAL NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kFatal)

// Check macros: always-on invariant checks that log and abort on failure.
#define NC_CHECK(cond)                                            \
  (cond) ? (void)0                                                \
         : ::netclus::util::internal::LogMessageVoidify() &       \
               ::netclus::util::internal::LogMessage(             \
                   ::netclus::util::LogLevel::kFatal, __FILE__,   \
                   __LINE__)                                      \
                   .stream()                                      \
               << "Check failed: " #cond " "

#define NC_CHECK_GE(a, b) NC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_GT(a, b) NC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_LE(a, b) NC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_LT(a, b) NC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_EQ(a, b) NC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_NE(a, b) NC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // NETCLUS_UTIL_LOGGING_H_
