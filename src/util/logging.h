// Leveled, structured logging for the NetClus library.
//
// Free-form lines:
//   NC_LOG_INFO << "built index with " << n << " clusters";
//
// Structured key=value lines (the observability layer's slow-query log
// and the serving warn paths use these; one event name, then fields):
//   NC_SLOG_WARNING("slow_query").Kv("latency_ms", 84.2).Kv("status", "OK");
//   -> [W 12.345 server.cc:101] slow_query latency_ms=84.2 status=OK
//
// Level control: SetLogLevel() wins; before the first SetLogLevel the
// level comes from the NETCLUS_LOG environment variable
// ("trace"|"debug"|"info"|"warning"|"error"|"fatal", default info).
//
// Rate limiting: NC_LOG_WARNING_ONCE logs its line the first time the
// call site is reached (per process); NC_LOG_WARNING_EVERY_SECONDS(s)
// logs at most once per `s` seconds per call site. Both swallow the
// streamed expression when suppressed.
//
// The sink is thread-safe and replaceable (SetLogSink) so tests can
// capture lines; the default writes to stderr with a monotonic timestamp
// so interleaving with benchmark output on stdout stays readable.
#ifndef NETCLUS_UTIL_LOGGING_H_
#define NETCLUS_UTIL_LOGGING_H_

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace netclus::util {

enum class LogLevel : int {
  kTrace = -1,
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level below which log lines are dropped.
/// Overrides the NETCLUS_LOG environment default.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum log level (NETCLUS_LOG-seeded).
LogLevel GetLogLevel();

/// Parses a level name ("trace", "debug", "info", "warning", "error",
/// "fatal"). Unknown names return kInfo.
LogLevel ParseLogLevel(const std::string& name);

/// Short level tag ("T", "D", "I", "W", "E", "F").
const char* LogLevelName(LogLevel level);

/// Replaceable log sink: receives every emitted line (without trailing
/// newline). Pass nullptr to restore the default stderr sink. The sink is
/// invoked under the logging mutex — it must not log recursively.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void SetLogSink(LogSink sink);

namespace internal {

// Accumulates one log line and flushes it on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Structured key=value message: an event name followed by Kv fields, in
// call order. Values are streamed; string values containing spaces or '='
// are double-quoted so the line stays machine-parseable.
class StructuredMessage {
 public:
  StructuredMessage(LogLevel level, const char* file, int line,
                    const char* event);

  template <typename V>
  StructuredMessage& Kv(const char* key, const V& value) {
    message_.stream() << ' ' << key << '=';
    AppendValue(value);
    return *this;
  }

 private:
  template <typename V>
  void AppendValue(const V& value) {
    message_.stream() << value;
  }
  void AppendValue(const std::string& value) { AppendString(value); }
  void AppendValue(const char* value) { AppendString(value); }
  void AppendValue(bool value) { message_.stream() << (value ? 1 : 0); }
  void AppendString(const std::string& value);

  LogMessage message_;
};

// Swallows the streamed expression when the line is below the active level.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

/// True at most once per `seconds` per state object (a static at the call
/// site); `seconds` <= 0 means exactly once ever.
bool RateLimitedShouldLog(std::atomic<int64_t>* last_ns, double seconds);

}  // namespace internal

}  // namespace netclus::util

#define NC_LOG_AT_LEVEL(level)                                            \
  (level) < ::netclus::util::GetLogLevel()                                \
      ? (void)0                                                           \
      : ::netclus::util::internal::LogMessageVoidify() &                  \
            ::netclus::util::internal::LogMessage((level), __FILE__,      \
                                                  __LINE__)               \
                .stream()

#define NC_LOG_TRACE NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kTrace)
#define NC_LOG_DEBUG NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kDebug)
#define NC_LOG_INFO NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kInfo)
#define NC_LOG_WARNING NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kWarning)
#define NC_LOG_ERROR NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kError)
#define NC_LOG_FATAL NC_LOG_AT_LEVEL(::netclus::util::LogLevel::kFatal)

// Structured logging: NC_SLOG_WARNING("event").Kv("k", v)... Note the
// level check happens in the LogMessage sink (the fields are still
// evaluated); use for warn/error paths, not per-query hot paths.
#define NC_SLOG_AT_LEVEL(level, event)                                     \
  ::netclus::util::internal::StructuredMessage((level), __FILE__,          \
                                               __LINE__, (event))
#define NC_SLOG_TRACE(event) \
  NC_SLOG_AT_LEVEL(::netclus::util::LogLevel::kTrace, (event))
#define NC_SLOG_DEBUG(event) \
  NC_SLOG_AT_LEVEL(::netclus::util::LogLevel::kDebug, (event))
#define NC_SLOG_INFO(event) \
  NC_SLOG_AT_LEVEL(::netclus::util::LogLevel::kInfo, (event))
#define NC_SLOG_WARNING(event) \
  NC_SLOG_AT_LEVEL(::netclus::util::LogLevel::kWarning, (event))
#define NC_SLOG_ERROR(event) \
  NC_SLOG_AT_LEVEL(::netclus::util::LogLevel::kError, (event))

// Rate-limited variants: one line per call site, ever (ONCE) or per
// window (EVERY_SECONDS). Suppressed occurrences swallow the expression.
// Expands to two statements — wrap in braces inside unbraced if/else.
#define NC_LOG_CONCAT_INNER(a, b) a##b
#define NC_LOG_CONCAT(a, b) NC_LOG_CONCAT_INNER(a, b)
#define NC_LOG_RATELIMITED_AT(level, seconds)                             \
  static ::std::atomic<int64_t> NC_LOG_CONCAT(nc_log_last_ns_,            \
                                              __LINE__){-1};              \
  !::netclus::util::internal::RateLimitedShouldLog(                       \
      &NC_LOG_CONCAT(nc_log_last_ns_, __LINE__), (seconds))               \
      ? (void)0                                                           \
      : NC_LOG_AT_LEVEL(level)

#define NC_LOG_WARNING_ONCE \
  NC_LOG_RATELIMITED_AT(::netclus::util::LogLevel::kWarning, 0.0)
#define NC_LOG_WARNING_EVERY_SECONDS(seconds) \
  NC_LOG_RATELIMITED_AT(::netclus::util::LogLevel::kWarning, (seconds))

// Check macros: always-on invariant checks that log and abort on failure.
#define NC_CHECK(cond)                                            \
  (cond) ? (void)0                                                \
         : ::netclus::util::internal::LogMessageVoidify() &       \
               ::netclus::util::internal::LogMessage(             \
                   ::netclus::util::LogLevel::kFatal, __FILE__,   \
                   __LINE__)                                      \
                   .stream()                                      \
               << "Check failed: " #cond " "

#define NC_CHECK_GE(a, b) NC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_GT(a, b) NC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_LE(a, b) NC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_LT(a, b) NC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_EQ(a, b) NC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define NC_CHECK_NE(a, b) NC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // NETCLUS_UTIL_LOGGING_H_
