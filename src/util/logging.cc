#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/thread_annotations.h"

namespace netclus::util {

namespace {

// Sentinel meaning "not yet resolved from NETCLUS_LOG".
constexpr int kLevelUnset = -100;

std::atomic<int> g_log_level{kLevelUnset};
nc::Mutex g_log_mutex;
LogSink g_log_sink GUARDED_BY(g_log_mutex);  // empty = stderr default

double ElapsedSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t MonotonicNs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  int level = g_log_level.load(std::memory_order_relaxed);
  if (level == kLevelUnset) {
    const char* env = std::getenv("NETCLUS_LOG");
    const LogLevel parsed =
        env != nullptr ? ParseLogLevel(env) : LogLevel::kInfo;
    level = static_cast<int>(parsed);
    // A racing SetLogLevel wins; re-resolving the env is idempotent.
    int expected = kLevelUnset;
    g_log_level.compare_exchange_strong(expected, level,
                                        std::memory_order_relaxed);
    level = g_log_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning" || name == "warn") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  if (name == "fatal") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  const nc::MutexLock lock(g_log_mutex);
  g_log_sink = std::move(sink);
}

namespace internal {

bool RateLimitedShouldLog(std::atomic<int64_t>* last_ns, double seconds) {
  int64_t last = last_ns->load(std::memory_order_relaxed);
  const int64_t now = MonotonicNs();
  for (;;) {
    if (last >= 0) {
      if (seconds <= 0.0) return false;  // once-ever and already fired
      if (static_cast<double>(now - last) < seconds * 1e9) return false;
    }
    if (last_ns->compare_exchange_weak(last, now, std::memory_order_relaxed)) {
      return true;
    }
    // `last` was reloaded by the failed CAS; re-evaluate the window.
  }
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%s %9.3f %s:%d] ",
                LogLevelName(level), ElapsedSeconds(), basename, line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  // The NC_LOG macros pre-filter, but StructuredMessage constructs the
  // message unconditionally — the level gate lives here so both agree.
  if (level_ >= GetLogLevel()) {
    const nc::MutexLock lock(g_log_mutex);
    if (g_log_sink) {
      g_log_sink(level_, stream_.str());
    } else {
      std::fprintf(stderr, "%s\n", stream_.str().c_str());
      std::fflush(stderr);
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

StructuredMessage::StructuredMessage(LogLevel level, const char* file,
                                     int line, const char* event)
    : message_(level, file, line) {
  message_.stream() << event;
}

void StructuredMessage::AppendString(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(" =\"\n\t") != std::string::npos || value.empty();
  if (!needs_quotes) {
    message_.stream() << value;
    return;
  }
  message_.stream() << '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') message_.stream() << '\\';
    if (c == '\n') {
      message_.stream() << "\\n";
    } else {
      message_.stream() << c;
    }
  }
  message_.stream() << '"';
}

}  // namespace internal

}  // namespace netclus::util
