#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace netclus::util {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

double ElapsedSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warning" || name == "warn") return LogLevel::kWarning;
  if (name == "error") return LogLevel::kError;
  if (name == "fatal") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%s %9.3f %s:%d] ", LevelName(level),
                ElapsedSeconds(), basename, line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace netclus::util
