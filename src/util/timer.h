// Wall-clock timers used by the query engines and the benchmark harness.
#ifndef NETCLUS_UTIL_TIMER_H_
#define NETCLUS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace netclus::util {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double, e.g. a per-phase counter.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ~ScopedAccumulator() { *sink_ += timer_.Seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_TIMER_H_
