#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <memory>

#include "util/flags.h"
#include "util/logging.h"

namespace netclus::util {

namespace {

thread_local bool tls_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const nc::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const nc::MutexLock lock(mu_);
    NC_CHECK(!stop_) << "Submit on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  tls_on_worker = true;
  while (true) {
    std::function<void()> task;
    {
      nc::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker; }

unsigned DefaultThreads() {
  static const unsigned threads = ThreadCount();
  return threads;
}

unsigned ResolveThreads(unsigned threads) {
  if (threads == 0) return DefaultThreads();
  return std::min(threads, kMaxThreads);
}

bool RunsInline(unsigned threads) {
  return ResolveThreads(threads) <= 1 || ThreadPool::OnWorkerThread();
}

size_t CoarseGrain(unsigned threads, size_t n, unsigned chunks_per_thread) {
  if (n == 0) return 1;
  if (RunsInline(threads)) return n;
  const size_t target_chunks = static_cast<size_t>(ResolveThreads(threads)) *
                               std::max(1u, chunks_per_thread);
  return std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
}

size_t EffectiveGrain(size_t n, size_t grain) {
  if (grain > 0) return grain;
  return std::max<size_t>(1, (n + 63) / 64);
}

namespace {

// Process-wide pool backing the helpers. When a call asks for more
// concurrency than the newest pool offers, a larger pool is created and the
// old one is *retired*, not destroyed: callers that grabbed it earlier (or
// are mid-flight on its workers) keep a valid pool, and nobody blocks
// joining busy workers. New pools are sized to the next power of two (up to
// kMaxThreads), so even a pathological sequence of growing requests retires
// only O(log kMaxThreads) pools; all are joined at static destruction.
struct PoolRegistry {
  nc::Mutex mu;
  std::vector<std::unique_ptr<ThreadPool>> pools GUARDED_BY(mu);
};

ThreadPool* SharedPool(unsigned min_size) {
  // Function-local static so the pools are joined at static destruction in
  // reverse construction order, after every user of the helpers has exited.
  static PoolRegistry registry;
  const nc::MutexLock lock(registry.mu);
  if (registry.pools.empty() || registry.pools.back()->size() < min_size) {
    const unsigned size = std::min(
        kMaxThreads, std::bit_ceil(std::max(min_size, DefaultThreads())));
    registry.pools.push_back(std::make_unique<ThreadPool>(size));
  }
  return registry.pools.back().get();
}

struct ForState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  nc::Mutex mu;
  nc::CondVar done_cv;
  size_t pending_tasks GUARDED_BY(mu) = 0;
  std::exception_ptr error GUARDED_BY(mu);
  size_t error_chunk GUARDED_BY(mu) = static_cast<size_t>(-1);
};

}  // namespace

void ParallelFor(unsigned threads, size_t n,
                 const std::function<void(size_t, size_t)>& body,
                 size_t grain) {
  if (n == 0) return;
  const size_t g = EffectiveGrain(n, grain);
  const size_t num_chunks = (n + g - 1) / g;
  const unsigned resolved = ResolveThreads(threads);
  const unsigned t = static_cast<unsigned>(std::min<size_t>(resolved, num_chunks));

  if (t <= 1 || num_chunks <= 1 || ThreadPool::OnWorkerThread()) {
    for (size_t c = 0; c < num_chunks; ++c) {
      body(c * g, std::min(n, (c + 1) * g));
    }
    return;
  }

  ForState state;
  auto run_chunks = [&] {
    // Stop claiming new chunks once any chunk has thrown, matching the
    // inline path's abort-at-first-throw behavior (in-flight chunks on
    // other workers still finish).
    while (!state.failed.load(std::memory_order_relaxed)) {
      const size_t c = state.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      try {
        body(c * g, std::min(n, (c + 1) * g));
      } catch (...) {
        state.failed.store(true, std::memory_order_relaxed);
        const nc::MutexLock lock(state.mu);
        if (c < state.error_chunk) {
          state.error_chunk = c;
          state.error = std::current_exception();
        }
      }
    }
  };

  // Size the pool by the resolved thread count, not the chunk-capped
  // executor count: pool size then stays monotone per configuration instead
  // of retiring a pool for every distinct chunk count encountered.
  ThreadPool* pool = SharedPool(resolved);
  const unsigned helpers = t - 1;  // the caller is the t-th executor
  {
    const nc::MutexLock lock(state.mu);
    state.pending_tasks = helpers;
  }
  for (unsigned i = 0; i < helpers; ++i) {
    pool->Submit([&state, &run_chunks] {
      run_chunks();
      const nc::MutexLock lock(state.mu);
      if (--state.pending_tasks == 0) state.done_cv.NotifyOne();
    });
  }
  run_chunks();
  std::exception_ptr error;
  {
    nc::MutexLock lock(state.mu);
    while (state.pending_tasks != 0) state.done_cv.Wait(lock);
    error = state.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace netclus::util
