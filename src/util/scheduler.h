// Work-stealing staged scheduler for the async serving path.
//
// Three priority lanes feed a fixed pool of workers:
//   kFast   — interactive request stages and anything cache-hit cheap;
//   kNormal — standard request admission stages;
//   kHeavy  — expensive stages (cover builds) that must never delay the
//             two lanes above.
// Every worker owns a private deque. Tasks submitted from a worker thread
// (stage continuations) push onto that worker's deque — LIFO, for
// locality; tasks submitted from outside land in the per-lane injector
// queues. An idle worker drains its own deque first, then the injectors
// in lane order (fast before heavy — this is what keeps cheap cache-hit
// queries from waiting behind cover builds), and finally steals the
// oldest task from another worker's deque. Stealing keeps the pool busy
// when one worker's continuation chain fans out faster than the others.
//
// Scheduling order is not deterministic and does not need to be: the
// serving stages it runs are deterministic functions of (snapshot, plan),
// so *results* never depend on which worker ran what (test_serve pins
// this bit-identically). Shutdown() drains: every task already submitted
// — and every task those tasks transitively submit — runs before the
// workers join, so in-flight request chains always complete.
#ifndef NETCLUS_UTIL_SCHEDULER_H_
#define NETCLUS_UTIL_SCHEDULER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace netclus::util {

class StagedScheduler {
 public:
  enum class Lane : uint8_t { kFast = 0, kNormal = 1, kHeavy = 2 };
  static constexpr size_t kLanes = 3;

  struct Options {
    /// Worker threads. 0 resolves NETCLUS_SCHED_WORKERS, else
    /// min(hardware_concurrency, 8), at least 2 — the serving pool wants
    /// real concurrency even when NETCLUS_THREADS pins queries serial.
    uint32_t workers = 0;
  };

  struct Stats {
    uint64_t executed = 0;  ///< tasks run to completion
    uint64_t stolen = 0;    ///< tasks taken from another worker's deque
    std::array<uint64_t, kLanes> injected{};  ///< external submits per lane
    /// Tasks completed per claim lane. Local-deque and stolen tasks count
    /// as kFast — only fast continuations ever land on worker deques.
    std::array<uint64_t, kLanes> executed_lane{};
    uint64_t busy_ns = 0;        ///< summed wall time inside task bodies
    double uptime_seconds = 0;   ///< since construction
    /// busy_ns / (workers * uptime) — mean fraction of the pool that was
    /// running a task. In [0, 1] modulo clock skew.
    double utilization = 0;
  };

  explicit StagedScheduler(const Options& options);
  ~StagedScheduler();

  StagedScheduler(const StagedScheduler&) = delete;
  StagedScheduler& operator=(const StagedScheduler&) = delete;

  /// Enqueues a task. Returns false (without running it) once Shutdown
  /// has begun and the caller is not a pool worker; worker threads may
  /// keep submitting during the drain so continuation chains finish.
  bool Submit(Lane lane, std::function<void()> task) EXCLUDES(mu_);

  /// Tasks submitted to `lane`'s injector queue and not yet claimed — the
  /// backpressure signal the serving layer sheds cover builds on.
  size_t QueueDepth(Lane lane) const EXCLUDES(mu_);

  /// Drains every submitted task (and their transitive submissions), then
  /// joins the workers. Idempotent; safe to call with tasks in flight.
  void Shutdown();

  /// True once Shutdown has begun (external submits are rejected).
  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  uint32_t workers() const { return static_cast<uint32_t>(workers_.size()); }

  Stats stats() const;

  /// True when the calling thread is one of this scheduler's workers.
  bool OnWorker() const;

 private:
  struct WorkerState {
    nc::Mutex mu;
    std::deque<std::function<void()>> deque GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self) EXCLUDES(mu_);
  bool TryClaim(size_t self, std::function<void()>* task, bool* stolen,
                size_t* lane_idx) EXCLUDES(mu_);

  // Injector queues + lifecycle live behind one mutex; per-worker deques
  // have their own. Lock order: a worker mutex may be held while taking
  // the injector mutex (Submit's fast path publishes the task only after
  // bumping outstanding_), but never the reverse, so there is no cycle.
  mutable nc::Mutex mu_;
  nc::CondVar cv_;
  std::array<std::deque<std::function<void()>>, kLanes> injector_
      GUARDED_BY(mu_);
  /// Submitted-but-not-finished task count; workers exit when it reaches
  /// zero with stop_ set, which is exactly the drain guarantee.
  size_t outstanding_ GUARDED_BY(mu_) = 0;
  /// Bumped on every submit so sleeping workers re-scan (a task parked in
  /// another worker's deque is invisible to the injector queues).
  uint64_t work_epoch_ GUARDED_BY(mu_) = 0;
  std::atomic<bool> stop_{false};

  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
  std::array<std::atomic<uint64_t>, kLanes> injected_{};
  std::array<std::atomic<uint64_t>, kLanes> executed_lane_{};
  std::atomic<uint64_t> busy_ns_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace netclus::util

#endif  // NETCLUS_UTIL_SCHEDULER_H_
