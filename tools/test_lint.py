#!/usr/bin/env python3
"""Self-tests for netclus_lint: every rule must fire on its golden bad
fixture and stay quiet on the clean cases. Runs under unittest or pytest:

    python3 tools/test_lint.py
    python3 -m pytest tools/test_lint.py
"""

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint           # noqa: E402
import netclus_lint   # noqa: E402
import promtext_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "lint_fixtures")


def run_fixture(fixture, pretend_path):
    """Lints a fixture file as if it lived at pretend_path in the repo."""
    with open(os.path.join(FIXTURES, fixture), "r", encoding="utf-8") as f:
        text = f.read()
    return netclus_lint.lint_file(pretend_path, text)


def rules(findings):
    return sorted({f.rule for f in findings})


class RawMutexRule(unittest.TestCase):
    def test_fires_on_every_primitive(self):
        findings = run_fixture("bad_raw_mutex.h", "src/util/bad_raw_mutex.h")
        raw = [f for f in findings if f.rule == "raw-mutex"]
        # mutex field, recursive_mutex field, condition_variable field,
        # lock_guard, unique_lock — the two #includes carry no std:: name.
        self.assertEqual(len(raw), 5, msg="\n".join(map(str, findings)))

    def test_exempt_in_thread_annotations(self):
        findings = run_fixture("bad_raw_mutex.h",
                               "src/util/thread_annotations.h")
        self.assertNotIn("raw-mutex", rules(findings))

    def test_not_applied_outside_src(self):
        findings = run_fixture("bad_raw_mutex.h", "tests/bad_raw_mutex.h")
        self.assertNotIn("raw-mutex", rules(findings))


class NondeterminismRule(unittest.TestCase):
    def test_fires_on_each_source(self):
        findings = run_fixture("bad_nondeterminism.cc",
                               "src/util/bad_nondeterminism.cc")
        nondet = [f for f in findings if f.rule == "nondeterminism"]
        self.assertEqual(len(nondet), 5, msg="\n".join(map(str, findings)))

    def test_seeded_rng_is_clean(self):
        findings = netclus_lint.lint_file(
            "src/util/ok.cc",
            "#include \"util/rng.h\"\n"
            "double Draw(netclus::util::Rng& rng) {"
            " return rng.UniformDouble(); }\n")
        self.assertEqual(findings, [])


class BenchJsonOutRule(unittest.TestCase):
    def test_fires_on_raw_ofstream(self):
        findings = run_fixture("bad_bench_out.cc", "bench/bad_bench_out.cc")
        self.assertIn("bench-json-out", rules(findings))

    def test_quiet_when_routed_through_json_out_path(self):
        findings = netclus_lint.lint_file(
            "bench/ok_bench.cc",
            "#include <fstream>\n"
            "#include \"bench_common.h\"\n"
            "int main(int argc, char** argv) {\n"
            "  const std::string p ="
            " bench::JsonOutPath(argc, argv, \"BENCH_x.json\");\n"
            "  std::ofstream json(p);\n"
            "  return 0;\n"
            "}\n")
        self.assertEqual(findings, [])

    def test_not_applied_to_src(self):
        findings = run_fixture("bad_bench_out.cc", "src/bad_bench_out.cc")
        self.assertNotIn("bench-json-out", rules(findings))


class FloatEqRule(unittest.TestCase):
    def test_fires_thrice_and_respects_carveouts(self):
        findings = run_fixture("bad_float_eq.cc", "src/tops/bad_float_eq.cc")
        float_eq = [f for f in findings if f.rule == "float-eq"]
        # Three bad comparisons; the kInfDistance line and the
        # NETCLUS_LINT_ALLOW-marked line stay quiet.
        self.assertEqual(len(float_eq), 3, msg="\n".join(map(str, findings)))

    def test_bit_equal_call_is_clean(self):
        findings = netclus_lint.lint_file(
            "src/tops/ok.cc",
            "bool Same(double a_dr_m, double b_dr_m) {"
            " return netclus::util::BitEqual(a_dr_m, b_dr_m); }\n")
        self.assertEqual(findings, [])

    def test_bits_suffix_is_exempt(self):
        findings = netclus_lint.lint_file(
            "src/exec/ok.cc",
            "bool Same(unsigned long tau_bits, unsigned long o_tau_bits) {"
            " return tau_bits == o_tau_bits; }\n")
        self.assertEqual(findings, [])


class IncludeGuardRule(unittest.TestCase):
    def test_wrong_guard(self):
        findings = run_fixture("bad_guard.h", "src/util/bad_guard.h")
        guard = [f for f in findings if f.rule == "include-guard"]
        self.assertEqual(len(guard), 1)
        self.assertIn("NETCLUS_UTIL_BAD_GUARD_H_", guard[0].message)

    def test_pragma_once(self):
        findings = run_fixture("bad_pragma_once.h",
                               "src/util/bad_pragma_once.h")
        self.assertIn("include-guard", rules(findings))

    def test_correct_guard_is_clean(self):
        findings = netclus_lint.lint_file(
            "src/util/ok.h",
            "#ifndef NETCLUS_UTIL_OK_H_\n"
            "#define NETCLUS_UTIL_OK_H_\n"
            "#endif  // NETCLUS_UTIL_OK_H_\n")
        self.assertEqual(findings, [])


class SimdIntrinsicsRule(unittest.TestCase):
    PAIRED_KERNEL = (
        "#include \"store/simd/bulk_varint.h\"\n"
        "#include <smmintrin.h>\n"
        "int Mask(const void* p) {"
        " return _mm_movemask_epi8(_mm_loadu_si128("
        "static_cast<const __m128i*>(p))); }\n")

    def test_fires_on_every_intrinsic_line_outside_quarantine(self):
        findings = run_fixture("bad_simd.cc", "src/tops/bad_simd.cc")
        simd = [f for f in findings if f.rule == "simd-intrinsics"]
        # The <immintrin.h> include plus seven intrinsic-call lines; the
        # commented _mm_add_epi32 mention stays quiet.
        self.assertEqual(len(simd), 8, msg="\n".join(map(str, findings)))
        self.assertIn("outside src/store/simd/", simd[0].message)

    def test_unpaired_kernel_file_inside_quarantine_fires(self):
        findings = run_fixture("bad_simd.cc", "src/store/simd/bad_simd.cc")
        simd = [f for f in findings if f.rule == "simd-intrinsics"]
        self.assertEqual(len(simd), 8, msg="\n".join(map(str, findings)))
        self.assertIn("runtime-dispatch", simd[0].message)

    def test_paired_kernel_file_is_clean(self):
        findings = netclus_lint.lint_file(
            "src/store/simd/ok_kernel.cc", self.PAIRED_KERNEL)
        self.assertEqual(findings, [])

    def test_pairing_not_required_without_intrinsics(self):
        findings = netclus_lint.lint_file(
            "src/store/simd/helpers.h",
            "#ifndef NETCLUS_STORE_SIMD_HELPERS_H_\n"
            "#define NETCLUS_STORE_SIMD_HELPERS_H_\n"
            "int ScalarOnly(int x);\n"
            "#endif  // NETCLUS_STORE_SIMD_HELPERS_H_\n")
        self.assertEqual(findings, [])

    def test_dispatch_include_alone_does_not_excuse_location(self):
        findings = netclus_lint.lint_file(
            "src/tops/bad_location.cc", self.PAIRED_KERNEL)
        self.assertIn("simd-intrinsics", rules(findings))

    def test_allow_marker_suppresses(self):
        findings = netclus_lint.lint_file(
            "src/util/probe.cc",
            "// NETCLUS_LINT_ALLOW(simd-intrinsics): cpuid probe only\n"
            "int Probe() { return _mm_crc32_u8(0, 0); }\n")
        self.assertNotIn("simd-intrinsics", rules(findings))

    def test_not_applied_outside_src(self):
        findings = run_fixture("bad_simd.cc", "tests/bad_simd.cc")
        self.assertNotIn("simd-intrinsics", rules(findings))


class CommentStripping(unittest.TestCase):
    def test_rules_ignore_comments_and_strings(self):
        findings = netclus_lint.lint_file(
            "src/util/ok.cc",
            "// std::mutex in prose is fine; so is rand() here.\n"
            "/* std::condition_variable */\n"
            "const char* kDoc = \"call rand() then std::mutex\";\n")
        self.assertEqual(findings, [])


class ExpectedGuard(unittest.TestCase):
    def test_derivation(self):
        self.assertEqual(netclus_lint.expected_guard("src/util/scheduler.h"),
                         "NETCLUS_UTIL_SCHEDULER_H_")
        self.assertEqual(
            netclus_lint.expected_guard("src/graph/spf/dijkstra.h"),
            "NETCLUS_GRAPH_SPF_DIJKSTRA_H_")


class PromtextLint(unittest.TestCase):
    def test_flags_every_violation_in_bad_fixture(self):
        errors = promtext_lint.lint_file(
            os.path.join(FIXTURES, "bad_metrics.prom"))
        text = "\n".join(errors)
        self.assertIn("missing netclus_ prefix", text)
        self.assertIn("should end in _total", text)
        self.assertIn("not cumulative", text)
        self.assertIn("bad sample value", text)

    def test_minimal_clean_exposition(self):
        body = (
            "# HELP netclus_requests_total Requests served.\n"
            "# TYPE netclus_requests_total counter\n"
            "netclus_requests_total{lane=\"fast\"} 12\n")
        with tempfile.NamedTemporaryFile(
                "w", suffix=".prom", delete=False) as f:
            f.write(body)
            path = f.name
        try:
            self.assertEqual(promtext_lint.lint_file(path), [])
        finally:
            os.unlink(path)


class LintDriver(unittest.TestCase):
    """tools/lint.py routes to the right sub-linter and merges exit codes."""

    def _run(self, argv):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = lint.main(["lint"] + argv)
        return rc, out.getvalue()

    def test_cpp_over_clean_fixture_free_tree(self):
        rc, out = self._run(
            ["--cpp", os.path.join(netclus_lint.REPO_ROOT,
                                   "src", "util", "thread_annotations.h")])
        self.assertEqual(rc, 0)
        self.assertIn("clean", out)

    def test_prom_failure_propagates(self):
        rc, out = self._run(
            ["--prom", os.path.join(FIXTURES, "bad_metrics.prom")])
        self.assertEqual(rc, 1)
        self.assertIn("netclus_ prefix", out)

    def test_cpp_failure_propagates(self):
        # Stage the fixture under a src/ dir so the path-scoped rules apply.
        with open(os.path.join(FIXTURES, "bad_raw_mutex.h"),
                  encoding="utf-8") as f:
            body = f.read()
        with tempfile.TemporaryDirectory() as root:
            os.mkdir(os.path.join(root, "src"))
            staged = os.path.join(root, "src", "bad_raw_mutex.h")
            with open(staged, "w", encoding="utf-8") as f:
                f.write(body)
            rc, out = self._run(["--cpp", "--root", root, staged])
        self.assertEqual(rc, 1)
        self.assertIn("raw-mutex", out)


class WholeTreeIsClean(unittest.TestCase):
    def test_repo_has_no_findings(self):
        root = netclus_lint.REPO_ROOT
        findings = []
        for path in netclus_lint.iter_repo_files(root):
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as f:
                findings.extend(netclus_lint.lint_file(rel, f.read()))
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
