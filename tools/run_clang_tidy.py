#!/usr/bin/env python3
"""Runs clang-tidy over the repo's own translation units.

Reads build/compile_commands.json (CMake writes it — the top-level
CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS), keeps only TUs that live
in this repo's src/, tests/, bench/ and examples/ trees (never _deps or
anything fetched), and runs clang-tidy on each with the checks from the
top-level .clang-tidy. Any diagnostic fails the run — the baseline is
zero warnings, kept that way by the CI static-analysis job.

Usage:
  python3 tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                                  [--clang-tidy BIN] [FILTER...]

FILTER arguments are substrings; when given, only TUs whose repo-relative
path contains one of them run (e.g. `src/serve` to iterate on a dir).
Exit 0 clean, 1 diagnostics, 2 setup problems (no binary / no database).

stdlib only — CI runs this with no pip installs.
"""

import argparse
import json
import multiprocessing.pool
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OWNED_PREFIXES = ("src/", "tests/", "bench/", "examples/")


def owned_tus(database_path, filters):
    """Repo-relative source paths from the compilation database, deduped
    and restricted to code we own."""
    with open(database_path, "r", encoding="utf-8") as f:
        database = json.load(f)
    seen = []
    for entry in database:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.normpath(os.path.join(entry["directory"], path))
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        if rel.startswith(".."):
            continue
        if not rel.startswith(OWNED_PREFIXES) or "_deps" in rel:
            continue
        if filters and not any(f in rel for f in filters):
            continue
        if rel not in seen:
            seen.append(rel)
    return seen


def run_one(args):
    binary, build_dir, rel = args
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", rel],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    # clang-tidy prints harmless noise ("N warnings generated" for
    # suppressed ones) on stderr; diagnostics land on stdout.
    return rel, proc.returncode, proc.stdout.strip()


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: first of "
                             "clang-tidy, clang-tidy-18..14 on PATH)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="parallel clang-tidy processes")
    parser.add_argument("--list", action="store_true",
                        help="print the TUs that would run, then exit")
    parser.add_argument("filters", nargs="*",
                        help="substring filters on repo-relative TU paths")
    args = parser.parse_args(argv[1:])

    database = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(database):
        print("run_clang_tidy: %s not found — configure first: "
              "cmake -B %s -S %s" % (database, args.build_dir, REPO_ROOT),
              file=sys.stderr)
        return 2

    tus = owned_tus(database, args.filters)
    if args.list:
        for rel in tus:
            print(rel)
        return 0
    if not tus:
        print("run_clang_tidy: no matching translation units", file=sys.stderr)
        return 2

    binary = args.clang_tidy
    if binary is None:
        candidates = ["clang-tidy"] + [
            "clang-tidy-%d" % v for v in range(18, 13, -1)]
        binary = next((c for c in candidates if shutil.which(c)), None)
    if binary is None or not shutil.which(binary):
        print("run_clang_tidy: no clang-tidy on PATH (CI installs it; "
              "locally: apt-get install clang-tidy)", file=sys.stderr)
        return 2

    print("run_clang_tidy: %d TU(s), %d job(s), %s"
          % (len(tus), args.jobs, binary))
    failures = 0
    with multiprocessing.pool.ThreadPool(min(args.jobs, len(tus))) as pool:
        work = [(binary, args.build_dir, rel) for rel in tus]
        for rel, code, out in pool.imap_unordered(run_one, work):
            if code != 0 or out:
                failures += 1
                print("--- %s" % rel)
                if out:
                    print(out)
                if code != 0 and not out:
                    print("clang-tidy exited %d with no output" % code)
            else:
                print("ok  %s" % rel)
    if failures:
        print("run_clang_tidy: %d of %d TU(s) with diagnostics"
              % (failures, len(tus)))
        return 1
    print("run_clang_tidy: %d TU(s) clean" % len(tus))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. --list | head
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
