#!/usr/bin/env python3
"""Repo-specific invariant linter for the NetClus codebase.

Enforces conventions that the compiler cannot (or that only clang can,
and CI must not depend on which toolchain a contributor has):

  R1 raw-mutex       src/ code must use the annotated nc::Mutex /
                     nc::MutexLock / nc::CondVar wrappers from
                     util/thread_annotations.h, never raw std::mutex &
                     friends — otherwise the thread-safety analysis the
                     CI gate runs is silently blind to that lock.
  R2 nondeterminism  src/ must not call rand()/srand(), read
                     std::random_device, or seed anything from time():
                     results are bit-identical across runs by contract
                     (util/rng.h is the seeded source of randomness).
  R3 bench-json-out  benches that write files must route the path
                     through bench::JsonOutPath so --out= and the
                     BENCH_* naming convention keep working.
  R4 float-eq        no == / != on distance-valued floats (dist/dr_m/
                     rt_m/tau names) outside the bit-pattern helpers;
                     use util::BitEqual. Comparisons against the
                     kInfDistance sentinel are allowed — it is a single
                     bit pattern produced only by initialization, so ==
                     agrees with BitEqual there.
  R5 include-guard   headers use the NETCLUS_<PATH>_H_ guard derived
                     from their repo path; #pragma once is not used.
  R6 simd-intrinsics raw SIMD intrinsics (_mm_* / _mm256_* calls and
                     <*intrin.h> includes) live only under
                     src/store/simd/, and every kernel file there must
                     pair with the runtime-dispatch entry point by
                     including store/simd/bulk_varint.h — callers always
                     go through the dispatched BulkDecodeVarint32 so the
                     scalar fallback and NETCLUS_SIMD pinning keep
                     working on every host.

A finding can be suppressed by putting NETCLUS_LINT_ALLOW(<rule>) in a
comment on the same line or the line directly above, e.g.
    // NETCLUS_LINT_ALLOW(float-eq): comparing against a literal probe
Suppressions should say why.

Usage: python3 tools/netclus_lint.py [--root DIR] [FILE...]
With no FILE arguments, lints the whole tree under --root (default: the
repo containing this script). Exit status 0 when clean, 1 otherwise.

stdlib only — CI runs this with no pip installs.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW = re.compile(r"NETCLUS_LINT_ALLOW\(([a-z0-9-]+)\)")

# R1 — raw synchronization primitives (the annotated wrappers hold the
# only std::mutex in the tree).
RAW_MUTEX = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
)
RAW_MUTEX_EXEMPT = {"src/util/thread_annotations.h"}

# R2 — nondeterminism sources. util::Rng wraps a seeded SplitMix64 /
# xoshiro; nothing else may generate randomness, and wall-clock time
# must never feed a seed or a result.
NONDET = re.compile(
    r"(?<![\w:])rand\s*\("          # rand( / but not strand(, util::Rand(
    r"|(?<![\w:])srand\s*\("
    r"|\bstd::random_device\b"
    r"|\bstd::time\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)

# R3 — file-writing primitives a bench may only use with JsonOutPath.
BENCH_WRITE = re.compile(r"\bstd::ofstream\b|\bstd::fopen\b|(?<![\w:])fopen\s*\(")

# R4 — == / != where either operand looks distance-valued. Identifiers
# ending in _bits carry bit patterns (already exact); *seconds* are
# durations, not distances, and never feed the determinism contract.
EQ_OP = re.compile(r"(?<![!<>=])==(?!=)|!=")
DISTISH = re.compile(r"dist|^dr_m$|^rt_m$|^rep_rt_m$|^tau(?:_m|_min|_max)?$|_tau$")
FLOAT_EQ_NAME_VETO = re.compile(r"_bits$|seconds|_idx$|_count$")
FLOAT_EQ_EXEMPT = {"src/util/float_bits.h"}

# An identifier path like `a.dr_m`, `rep_before[p].second`, `c->rt_m`:
# a leading identifier followed by member/index/call suffixes. Written
# without ambiguous alternation so matching never backtracks badly.
_PATH = r"[A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*|\[[^\]]*\]|\(\))*"
_PATH_TAIL = re.compile(r"({p})\s*$".format(p=_PATH))
_PATH_HEAD = re.compile(r"\s*[!(]*({p})".format(p=_PATH))


def _distance_operand(fragment, trailing):
    """True when the operand adjacent to the operator is distance-named:
    the last identifier path before it (trailing=True) or the first one
    after it. Only the final name component decides."""
    m = (_PATH_TAIL.search(fragment) if trailing
         else _PATH_HEAD.match(fragment))
    if not m:
        return False
    name = re.split(r"\.|->|::", m.group(1))[-1]
    name = re.sub(r"\[[^\]]*\]|\(\)", "", name)
    if not name or FLOAT_EQ_NAME_VETO.search(name):
        return False
    return bool(DISTISH.search(name))

# R5 — include guards.
GUARD_IFNDEF = re.compile(r"^#ifndef\s+(NETCLUS_[A-Z0-9_]+_H_)\s*$", re.M)
PRAGMA_ONCE = re.compile(r"^#pragma\s+once", re.M)

# R6 — raw SIMD intrinsics are quarantined in src/store/simd/. An
# intrinsic call (_mm_*, _mm256_*, _mm512_*) or an intrinsic header
# include anywhere else bypasses the runtime dispatch and breaks the
# scalar-fallback contract; inside the quarantine, every file that uses
# intrinsics must include the dispatch entry point so the kernel it
# implements is reachable through Supports()/ActiveKernel().
SIMD_INTRINSIC = re.compile(
    r"\b_mm(?:256|512)?_[a-z0-9_]+\s*\("
    r"|#\s*include\s*[<\"][a-z0-9_]*intrin\.h[>\"]"
)
SIMD_DIR = "src/store/simd/"
SIMD_DISPATCH_HEADER = "src/store/simd/bulk_varint.h"
# Matched against the raw text: the comment/string stripper blanks the
# quoted include path, so the stripped code cannot see it.
SIMD_DISPATCH_INCLUDE = re.compile(
    r'#\s*include\s*"store/simd/bulk_varint\.h"')


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


def _allowed(rule, lines, idx):
    """True when line idx (0-based) carries or follows an allow marker."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def expected_guard(rel_path):
    """src/util/scheduler.h -> NETCLUS_UTIL_SCHEDULER_H_ (src/ stripped)."""
    stem = rel_path
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    stem = re.sub(r"\.h$", "", stem)
    return "NETCLUS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def strip_comments_keep_lines(text):
    """Blanks out // and /* */ comment bodies (and string literals) so
    rules do not fire on prose; line numbers are preserved."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c if c in ('"', "\n") else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c if c in ("'", "\n") else " ")
        i += 1
    return "".join(out)


def lint_file(rel_path, text):
    findings = []
    raw_lines = text.splitlines()
    code = strip_comments_keep_lines(text)
    code_lines = code.splitlines()
    in_src = rel_path.startswith("src/")
    in_bench = rel_path.startswith("bench/")
    is_header = rel_path.endswith(".h")

    def scan(rule, pattern, message, veto=None):
        for i, line in enumerate(code_lines):
            m = pattern.search(line)
            if not m:
                continue
            if veto is not None and veto.search(line):
                continue
            if _allowed(rule, raw_lines, i):
                continue
            findings.append(Finding(rule, rel_path, i + 1, message))

    if in_src and rel_path not in RAW_MUTEX_EXEMPT:
        scan(
            "raw-mutex", RAW_MUTEX,
            "raw std::mutex/lock/condition_variable; use the annotated "
            "nc:: wrappers from util/thread_annotations.h",
        )

    if in_src:
        scan(
            "nondeterminism", NONDET,
            "nondeterministic source (rand/time/random_device); use the "
            "seeded util::Rng",
        )

    if in_bench and rel_path.endswith(".cc"):
        if BENCH_WRITE.search(code) and "JsonOutPath" not in code:
            for i, line in enumerate(code_lines):
                if BENCH_WRITE.search(line) and not _allowed(
                        "bench-json-out", raw_lines, i):
                    findings.append(Finding(
                        "bench-json-out", rel_path, i + 1,
                        "bench writes a file without routing the path "
                        "through bench::JsonOutPath"))

    if in_src and rel_path not in FLOAT_EQ_EXEMPT:
        for i, line in enumerate(code_lines):
            if "kInfDistance" in line:  # sentinel bit pattern: == is exact
                continue
            if "BitEqual" in line:
                continue
            hit = any(
                _distance_operand(line[:m.start()], trailing=True) or
                _distance_operand(line[m.end():], trailing=False)
                for m in EQ_OP.finditer(line))
            if not hit:
                continue
            if _allowed("float-eq", raw_lines, i):
                continue
            findings.append(Finding(
                "float-eq", rel_path, i + 1,
                "== / != on a distance-valued float; use util::BitEqual "
                "(kInfDistance sentinel comparisons are exempt)"))

    if in_src and is_header:
        if PRAGMA_ONCE.search(code):
            findings.append(Finding(
                "include-guard", rel_path, 1,
                "#pragma once; use the NETCLUS_<PATH>_H_ guard"))
        else:
            want = expected_guard(rel_path)
            m = GUARD_IFNDEF.search(code)
            if m is None:
                findings.append(Finding(
                    "include-guard", rel_path, 1,
                    "missing include guard (expected %s)" % want))
            elif m.group(1) != want:
                findings.append(Finding(
                    "include-guard", rel_path,
                    code[:m.start()].count("\n") + 1,
                    "guard %s does not match path (expected %s)"
                    % (m.group(1), want)))
            elif ("#define " + want) not in code:
                findings.append(Finding(
                    "include-guard", rel_path, 1,
                    "guard %s has no matching #define" % want))

    if in_src:
        if not rel_path.startswith(SIMD_DIR):
            scan(
                "simd-intrinsics", SIMD_INTRINSIC,
                "raw SIMD intrinsic outside src/store/simd/; implement a "
                "kernel there behind the runtime dispatch in "
                "store/simd/bulk_varint.h",
            )
        elif (rel_path != SIMD_DISPATCH_HEADER
              and SIMD_INTRINSIC.search(code)
              and not SIMD_DISPATCH_INCLUDE.search(text)):
            scan(
                "simd-intrinsics", SIMD_INTRINSIC,
                "SIMD kernel file does not include the runtime-dispatch "
                "entry point store/simd/bulk_varint.h",
            )

    return findings


def iter_repo_files(root):
    for sub in ("src", "bench", "tests", "examples"):
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc")):
                    yield os.path.join(dirpath, name)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root for tree-wide runs and guard paths")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args(argv[1:])

    root = os.path.abspath(args.root)
    paths = [os.path.abspath(f) for f in args.files] or list(
        iter_repo_files(root))

    findings = []
    checked = 0
    for path in paths:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print("netclus_lint: cannot read %s: %s" % (path, e),
                  file=sys.stderr)
            return 1
        findings.extend(lint_file(rel, text))
        checked += 1

    for finding in findings:
        print(finding)
    if findings:
        print("netclus_lint: %d finding(s) in %d file(s) checked"
              % (len(findings), checked))
        return 1
    print("netclus_lint: %d file(s) clean" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
