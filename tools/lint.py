#!/usr/bin/env python3
"""One entry point for the repo's linters.

Sub-linters (each also runs standalone, this driver just unifies them):

  cpp   netclus_lint.py  — repo invariant rules over src/, bench/,
                           tests/, examples/ (raw-mutex, nondeterminism,
                           bench-json-out, float-eq, include-guard)
  prom  promtext_lint.py — Prometheus text-exposition (*.prom) files

Usage:
  python3 tools/lint.py --all               # everything discoverable
  python3 tools/lint.py --cpp [FILE...]     # C++ rules (tree or files)
  python3 tools/lint.py --prom FILE [...]   # named .prom files
  python3 tools/lint.py --selftest          # linter self-test suite

--all runs the C++ rules over the whole tree plus the prom linter over
every *.prom found under the repo (including build/ exports, which is
where examples/live_placement_service writes its dump). Flags combine;
with no flags, --all is assumed. Exit 0 when clean, 1 on findings.

stdlib only — CI runs this with no pip installs.
"""

import argparse
import os
import subprocess
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, TOOLS_DIR)

import netclus_lint   # noqa: E402
import promtext_lint  # noqa: E402

REPO_ROOT = os.path.dirname(TOOLS_DIR)


def find_prom_files(root):
    """Every *.prom under the repo; build/ exports included on purpose —
    a stale dump that stops parsing is exactly what we want to hear about."""
    hits = []
    for dirpath, dirnames, filenames in os.walk(root):
        # lint_fixtures holds deliberately-bad inputs for the self-tests.
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", "_deps", "lint_fixtures")]
        for name in sorted(filenames):
            if name.endswith(".prom"):
                hits.append(os.path.join(dirpath, name))
    return hits


def run_cpp(files, root):
    argv = ["netclus_lint", "--root", root] + list(files)
    return netclus_lint.main(argv)


def run_prom(files):
    if not files:
        print("lint: no .prom files found (nothing exported yet) — skipped")
        return 0
    return promtext_lint.main(["promtext_lint"] + list(files))


def run_selftest():
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS_DIR, "test_lint.py")],
        cwd=REPO_ROOT)
    return proc.returncode


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--all", action="store_true",
                        help="run every linter over everything discoverable")
    parser.add_argument("--cpp", action="store_true",
                        help="run the C++ invariant rules")
    parser.add_argument("--prom", action="store_true",
                        help="run the Prometheus text linter on FILE args")
    parser.add_argument("--selftest", action="store_true",
                        help="run the linter self-tests (tools/test_lint.py)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root (default: the repo of this script)")
    parser.add_argument("files", nargs="*",
                        help="explicit files for --cpp / --prom")
    args = parser.parse_args(argv[1:])

    if not (args.all or args.cpp or args.prom or args.selftest):
        args.all = True

    root = os.path.abspath(args.root)
    rc = 0
    if args.cpp or args.all:
        cpp_files = [f for f in args.files if not f.endswith(".prom")]
        rc |= run_cpp(cpp_files, root)
    if args.prom or args.all:
        prom_files = [f for f in args.files if f.endswith(".prom")]
        if args.all and not prom_files:
            prom_files = find_prom_files(root)
        rc |= run_prom(prom_files)
    if args.selftest:
        rc |= run_selftest()
    return 1 if rc else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
