// Fixture: wrong include-guard spelling for its path (R5).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace netclus {
inline int Nothing() { return 0; }
}  // namespace netclus

#endif  // WRONG_GUARD_H
