// Fixture: every raw synchronization primitive R1 must flag.
#ifndef NETCLUS_BAD_RAW_MUTEX_H_
#define NETCLUS_BAD_RAW_MUTEX_H_

#include <condition_variable>
#include <mutex>

namespace netclus {

class BadLocking {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);  // BAD: raw lock_guard
    ++value_;
  }
  void WaitReady() {
    std::unique_lock<std::mutex> lock(mu_);  // BAD: raw unique_lock
    cv_.wait(lock);
  }

 private:
  std::mutex mu_;                 // BAD: raw std::mutex
  std::recursive_mutex rmu_;      // BAD: raw std::recursive_mutex
  std::condition_variable cv_;    // BAD: raw condition_variable
  int value_ = 0;
};

}  // namespace netclus

#endif  // NETCLUS_BAD_RAW_MUTEX_H_
