// Fixture: every nondeterminism source R2 must flag.
#include <cstdlib>
#include <ctime>
#include <random>

namespace netclus {

int BadSeeds() {
  srand(42);                        // BAD: srand
  int a = rand();                   // BAD: rand
  std::random_device rd;            // BAD: random_device
  unsigned long t = std::time(nullptr);  // BAD: std::time
  unsigned long u = time(NULL);     // BAD: time(NULL)
  return a + static_cast<int>(rd() + t + u);
}

}  // namespace netclus
