// Fixture: distance-valued float equality R4 must flag — except the
// kInfDistance sentinel carve-out and an explicit allow marker.
namespace netclus {

struct Entry {
  double dr_m;
  double rt_m;
  int id;
};

constexpr double kInfDistance = 1e18;

bool BadCompare(const Entry& a, const Entry& b, double dist, double tau_m) {
  if (a.dr_m == b.dr_m) return a.id < b.id;  // BAD: == on dr_m
  if (a.rt_m != b.rt_m) return false;        // BAD: != on rt_m
  if (dist == tau_m) return true;            // BAD: == on dist/tau
  if (dist == kInfDistance) return false;    // OK: sentinel carve-out
  // NETCLUS_LINT_ALLOW(float-eq): fixture demonstrating suppression
  return a.dr_m == 0.0;
}

}  // namespace netclus
