// Fixture: #pragma once instead of the repo's include guard (R5).
#pragma once

namespace netclus {
inline int Nothing() { return 0; }
}  // namespace netclus
