// Fixture: a bench writing a hard-coded path without JsonOutPath (R3).
#include <fstream>

int main() {
  std::ofstream json("/tmp/results.json");  // BAD: no JsonOutPath
  json << "{}\n";
  return 0;
}
