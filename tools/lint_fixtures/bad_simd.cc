// Golden bad fixture for the simd-intrinsics rule: raw intrinsics in a
// file that is not under src/store/simd/ (or that sits there without
// including the runtime-dispatch entry point). Every intrinsic call
// line and the intrinsic-header include must fire; the commented
// _mm_add_epi32 mention below must not.
#include <immintrin.h>

#include <cstdint>

namespace netclus::tops {

uint32_t HorizontalSum(const uint32_t* p) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  v = _mm_add_epi32(v, _mm_srli_si128(v, 8));
  v = _mm_add_epi32(v, _mm_srli_si128(v, 4));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(v));
}

uint64_t WideSum(const uint32_t* p) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m128i lo = _mm256_castsi256_si128(v);
  return static_cast<uint32_t>(_mm_cvtsi128_si32(lo));
}

}  // namespace netclus::tops
