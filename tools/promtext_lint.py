#!/usr/bin/env python3
"""Lints a Prometheus text-exposition file (version 0.0.4).

Checks the subset of the spec our exporter emits plus the repo's own
naming conventions (docs/observability.md):

  * every line is a comment (# HELP / # TYPE), blank, or a sample;
  * metric and label names match the spec grammar;
  * # TYPE appears at most once per family, before its samples, and
    samples of one family are contiguous;
  * sample values parse as Go-style floats (including +Inf/-Inf/NaN);
  * histogram families have _bucket/_sum/_count series, bucket counts are
    cumulative (non-decreasing with le) and end at le="+Inf";
  * repo conventions: families start with netclus_, counters end in
    _total, histograms in _seconds.

Usage: python3 tools/promtext_lint.py FILE [FILE...]
Exit status 0 if every file is clean, 1 otherwise.

stdlib only — CI runs this on DumpMetrics() output with no pip installs.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value [timestamp] — labels part matched non-greedily, the
# label blob is split by a dedicated scanner below to honor escapes.
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
LABEL_PAIR = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def split_labels(blob, err):
    """Parses 'k="v",k2="v2"' into a dict; calls err() on malformed input."""
    labels = {}
    pos = 0
    while pos < len(blob):
        m = LABEL_PAIR.match(blob, pos)
        if m is None:
            err("malformed label pair at %r" % blob[pos:])
            return labels
        key = m.group("key")
        if key in labels:
            err("duplicate label %r" % key)
        labels[key] = m.group("val")
        pos = m.end()
    return labels


def family_of(name):
    """Strips histogram/summary series suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().split("\n")
    except OSError as e:
        return ["%s: cannot read: %s" % (path, e)]

    types = {}          # family -> declared TYPE
    helps = set()       # families with a HELP line
    seen_samples = {}   # family -> first sample line number
    closed = set()      # families whose sample block has ended
    buckets = {}        # family -> list of (le, cumulative_count)
    last_family = None

    def err(lineno, message):
        errors.append("%s:%d: %s" % (path, lineno, message))

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    err(lineno, "malformed %s line: %r" % (parts[1], line))
                    continue
                family = parts[2]
                if parts[1] == "HELP":
                    if family in helps:
                        err(lineno, "duplicate HELP for %s" % family)
                    helps.add(family)
                else:
                    kind = parts[3] if len(parts) == 4 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        err(lineno, "unknown TYPE %r for %s" % (kind, family))
                    if family in types:
                        err(lineno, "duplicate TYPE for %s" % family)
                    if family in seen_samples:
                        err(lineno, "TYPE for %s after its samples" % family)
                    types[family] = kind
            # Other comments are legal and ignored.
            continue

        m = SAMPLE.match(line)
        if m is None:
            err(lineno, "unparseable sample line: %r" % line)
            continue
        name = m.group("name")
        family = family_of(name) if family_of(name) in types else name
        labels = split_labels(m.group("labels") or "",
                              lambda msg: err(lineno, msg))
        for key in labels:
            if not LABEL_NAME.match(key):
                err(lineno, "bad label name %r" % key)
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            err(lineno, "bad sample value %r" % m.group("value"))
            continue

        if family in closed:
            err(lineno, "samples of %s are not contiguous" % family)
        if last_family is not None and family != last_family:
            closed.add(last_family)
        last_family = family
        seen_samples.setdefault(family, lineno)

        kind = types.get(family)
        if kind == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    err(lineno, "histogram bucket without le: %s" % name)
                else:
                    key = tuple(sorted(
                        (k, v) for k, v in labels.items() if k != "le"))
                    buckets.setdefault((family, key), []).append(
                        (labels["le"], value, lineno))
            elif not (name.endswith("_sum") or name.endswith("_count")):
                err(lineno, "histogram family %s has plain sample %s"
                    % (family, name))
        elif kind == "counter":
            if value < 0:
                err(lineno, "counter %s is negative (%s)" % (name, value))

        # Repo conventions (docs/observability.md).
        if not family.startswith("netclus_"):
            err(lineno, "family %s missing netclus_ prefix" % family)
        if kind == "counter" and not family.endswith("_total"):
            err(lineno, "counter %s should end in _total" % family)
        if kind == "histogram" and not family.endswith("_seconds"):
            err(lineno, "histogram %s should end in _seconds" % family)

    for (family, key), series in buckets.items():
        prev = -1.0
        for le, count, lineno in series:
            if count < prev:
                err(lineno, "histogram %s%r buckets not cumulative"
                    % (family, dict(key)))
            prev = count
        if series[-1][0] != "+Inf":
            errors.append("%s: histogram %s%r missing le=\"+Inf\" bucket"
                          % (path, family, dict(key)))

    for family in types:
        if family not in seen_samples:
            errors.append("%s: TYPE %s declared but no samples"
                          % (path, family))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().split("\n")[0])
        print("usage: promtext_lint.py FILE [FILE...]")
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(lint_file(path))
    for e in all_errors:
        print(e)
    if not all_errors:
        print("promtext_lint: %d file(s) clean" % (len(argv) - 1))
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
