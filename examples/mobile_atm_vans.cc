// Mobile ATM van dispatch: real-time re-planning over dynamic trajectories.
//
// The paper motivates NetClus with exactly this use case (Sec. 1): mobile
// ATM vans are re-positioned during the day as traffic patterns shift, so
// placement queries must (a) answer in real time and (b) absorb trajectory
// updates without rebuilding the index.
//
// The simulation runs three "day phases" over a star-topology city
// ("New York"): morning commute into the core, a midday lull, and an
// evening flow out along two corridors. Between phases, the corpus is
// updated through the dynamic-update API (Sec. 6) and the vans are
// re-dispatched with a capacity constraint (each van serves a bounded
// number of customers, Sec. 7.2).
//
// Run: ./build/examples/mobile_atm_vans
#include <cstdio>
#include <iostream>

#include "data/datasets.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/variants.h"
#include "traj/trip_generator.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace netclus;

// Adds `count` trips whose destination (or origin, if `inbound` is false)
// clusters around the given node.
std::vector<traj::TrajId> AddFlow(data::Dataset* city, graph::NodeId focus,
                                  bool inbound, uint32_t count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<traj::TrajId> ids;
  const auto& net = *city->network;
  for (uint32_t i = 0; i < count; ++i) {
    const auto other = static_cast<graph::NodeId>(rng.UniformInt(net.num_nodes()));
    const graph::NodeId src = inbound ? other : focus;
    const graph::NodeId dst = inbound ? focus : other;
    if (src == dst) continue;
    auto route = traj::RoutePerturbed(net, src, dst, 0.3, seed * 1000 + i);
    if (route.size() >= 2) ids.push_back(city->store->Add(std::move(route)));
  }
  return ids;
}

}  // namespace

int main() {
  data::Dataset city = data::MakeNewYork(0.3);
  std::printf("star city: %zu intersections, %zu base trajectories\n",
              city.num_nodes(), city.num_trajectories());

  index::MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 5000.0;
  index::MultiIndex index = index::MultiIndex::Build(*city.store, city.sites, config);
  const index::QueryEngine engine(&index, city.store.get(), &city.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();

  // 4 vans, each able to serve 400 customers before running out of cash.
  const std::vector<double> van_capacity(city.sites.size(), 400.0);
  auto dispatch = [&](const char* phase) {
    index::QueryConfig query;
    query.k = 4;
    query.tau_m = 1200.0;
    util::WallTimer timer;
    const index::QueryResult result = engine.TopsCapacity(psi, query, van_capacity);
    const double covered = tops::CoverageIndex::EvaluateSelection(
        *city.store, city.sites, result.selection.sites, query.tau_m, psi);
    std::printf("%-8s dispatch in %6.1f ms -> vans at nodes [", phase,
                timer.Millis());
    for (size_t i = 0; i < result.selection.sites.size(); ++i) {
      std::printf("%s%u", i ? ", " : "",
                  city.sites.node(result.selection.sites[i]));
    }
    std::printf("], %.0f/%zu trajectories in reach (%.1f%%)\n", covered,
                city.store->live_count(),
                100.0 * covered / city.store->live_count());
  };

  dispatch("baseline");

  // Morning: heavy inbound flow to the core (node 0 is in the core mesh).
  util::WallTimer update_timer;
  const auto morning = AddFlow(&city, /*focus=*/0, /*inbound=*/true, 1500, 1);
  for (traj::TrajId t : morning) index.AddTrajectory(*city.store, t);
  std::printf("\n[morning] +%zu inbound trips absorbed in %.1f ms\n",
              morning.size(), update_timer.Millis());
  dispatch("morning");

  // Midday: the morning surge ends (batch deletion).
  update_timer.Reset();
  for (traj::TrajId t : morning) {
    city.store->Remove(t);
    index.RemoveTrajectory(t);
  }
  std::printf("\n[midday] morning surge removed in %.1f ms\n",
              update_timer.Millis());
  dispatch("midday");

  // Evening: outbound flows along two corridors.
  update_timer.Reset();
  const auto ray_a = AddFlow(&city, static_cast<graph::NodeId>(city.num_nodes() / 2),
                             /*inbound=*/false, 800, 2);
  const auto ray_b = AddFlow(&city, static_cast<graph::NodeId>(city.num_nodes() - 1),
                             /*inbound=*/false, 800, 3);
  for (traj::TrajId t : ray_a) index.AddTrajectory(*city.store, t);
  for (traj::TrajId t : ray_b) index.AddTrajectory(*city.store, t);
  std::printf("\n[evening] +%zu outbound trips absorbed in %.1f ms\n",
              ray_a.size() + ray_b.size(), update_timer.Millis());
  dispatch("evening");
  return 0;
}
