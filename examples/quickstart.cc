// Quickstart: the full NetClus pipeline in ~80 lines.
//
//  1. generate a small synthetic city and commuter trajectories,
//  2. ingest a raw GPS trace through the built-in map-matcher,
//  3. build the multi-resolution NetClus index (offline phase),
//  4. ask for the top-5 sites at τ = 0.8 km (online phase),
//  5. compare against the exact Inc-Greedy baseline.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "api/engine.h"
#include "graph/generators.h"
#include "traj/trace_synthesizer.h"
#include "traj/trip_generator.h"
#include "util/rng.h"

int main() {
  using namespace netclus;

  // 1. A 40x40-block grid city (~2.4 km x 2.4 km) with one-way streets.
  graph::GridCityConfig city;
  city.rows = 40;
  city.cols = 40;
  city.block_m = 120.0;
  graph::RoadNetwork network = graph::GenerateGridCity(city);
  std::printf("city: %zu intersections, %zu road segments\n",
              network.num_nodes(), network.num_edges());

  // Every intersection is a candidate site (the paper's default).
  tops::SiteSet sites = tops::SiteSet::AllNodes(network);
  Engine::Options options;
  options.index.gamma = 0.75;          // index resolution (Table 7)
  options.index.tau_min_m = 240.0;     // supported query range
  options.index.tau_max_m = 4000.0;
  Engine engine(std::move(network), std::move(sites), options);

  // 2. Commuter trips between hotspots, with non-shortest-path deviation.
  util::Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const auto src = static_cast<graph::NodeId>(
        rng.UniformInt(engine.network().num_nodes()));
    const auto dst = static_cast<graph::NodeId>(
        rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto route = traj::RoutePerturbed(engine.network(), src, dst, 0.3, 1000 + i);
    if (route.size() >= 2) engine.AddTrajectory(std::move(route));
  }

  // ...plus one raw GPS trace, to exercise the map-matching front end.
  graph::DijkstraEngine dijkstra(&engine.network());
  const auto truth = dijkstra.ShortestPath(0, 900);
  traj::TraceSynthesizerConfig synth;
  synth.noise_sigma_m = 15.0;
  const auto trace = SynthesizeTrace(engine.network(), truth, synth);
  if (const auto id = engine.AddGpsTrace(trace)) {
    std::printf("map-matched a %zu-sample GPS trace to %zu intersections\n",
                trace.size(), engine.store().trajectory(*id).size());
  }
  std::printf("corpus: %zu trajectories\n", engine.store().live_count());

  // 3. Offline phase: build the multi-resolution index.
  engine.BuildIndex();
  std::printf("index: %zu instances, %s, built in %.2f s\n",
              engine.index().num_instances(),
              util::HumanBytes(engine.index().MemoryBytes()).c_str(),
              engine.index().build_seconds());

  // 4. Online phase: TOPS(k = 5, τ = 800 m, binary ψ).
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  const auto result = engine.TopK(5, 800.0, psi);
  const double exact_utility =
      engine.EvaluateExact(result.selection.sites, 800.0, psi);
  std::printf("\nNetClus top-5 sites (tau = 800 m), instance %zu, %.1f ms:\n",
              result.instance_used, result.total_seconds * 1e3);
  for (size_t i = 0; i < result.selection.sites.size(); ++i) {
    const auto node = engine.sites().node(result.selection.sites[i]);
    const auto& p = engine.network().position(node);
    std::printf("  #%zu site %u at (%.0f m, %.0f m), marginal gain %.0f\n",
                i + 1, result.selection.sites[i], p.x, p.y,
                result.selection.marginal_gains[i]);
  }
  std::printf("covered trajectories: %.0f of %zu (%.1f%%)\n", exact_utility,
              engine.store().live_count(),
              100.0 * exact_utility / engine.store().live_count());

  // 5. Exact Inc-Greedy baseline for comparison.
  const auto greedy = engine.ExactGreedy(5, 800.0, psi);
  std::printf("\nInc-Greedy baseline: %.0f covered (NetClus reaches %.1f%% of it)\n",
              greedy.utility, 100.0 * exact_utility / greedy.utility);

  // 6. Batched serving: many independent (k, τ) requests answered
  // concurrently over the shared index (threads from NETCLUS_THREADS).
  std::vector<Engine::QuerySpec> specs;
  for (const double tau : {500.0, 800.0, 1200.0}) {
    Engine::QuerySpec spec;
    spec.k = 5;
    spec.tau_m = tau;
    specs.push_back(std::move(spec));
  }
  const auto answers = engine.TopKBatch(specs);
  std::printf("\nbatch of %zu queries:\n", answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    std::printf("  tau = %4.0f m -> utility %.0f (%.1f ms)\n", specs[i].tau_m,
                answers[i].selection.utility,
                answers[i].total_seconds * 1e3);
  }
  return 0;
}
