// Billboard placement with distance-decaying attention (TOPS2) and an
// incumbent competitor (existing services, Sec. 7.3).
//
// An advertiser buys k billboard sites. A driver's attention to a board
// decays with the detour distance — the paper's TOPS2 variant models this
// with a convex decreasing probability ψ(T, s) = (1 - d_r/τ)². The
// incumbent already operates boards at the busiest sites; the entrant
// maximizes *additional* reach, which the warm-started greedy handles with
// the same (1 - 1/e) guarantee.
//
// Demonstrates: non-binary preference functions, existing services, and
// the quality/runtime contrast between NetClus and exact Inc-Greedy.
//
// Run: ./build/examples/billboard_reach
#include <cstdio>
#include <iostream>

#include "data/datasets.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/inc_greedy.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace netclus;

  data::Dataset city = data::MakeAtlanta(0.3);
  std::printf("mesh city: %zu intersections, %zu trajectories\n",
              city.num_nodes(), city.num_trajectories());

  const double tau = 900.0;
  const tops::PreferenceFunction psi = tops::PreferenceFunction::ConvexProbability(2.0);

  // The incumbent: Inc-Greedy's unconstrained top-3 (the "obvious" spots).
  tops::CoverageConfig cc;
  cc.tau_m = tau;
  util::WallTimer exact_timer;
  const tops::CoverageIndex coverage =
      tops::CoverageIndex::Build(*city.store, city.sites, cc);
  tops::GreedyConfig greedy_config;
  greedy_config.k = 3;
  const tops::Selection incumbent = IncGreedy(coverage, psi, greedy_config);
  std::printf("incumbent boards (exact greedy, %.1f s incl. covering sets): ",
              exact_timer.Seconds());
  for (tops::SiteId s : incumbent.sites) std::printf("%u ", city.sites.node(s));
  std::printf("reach %.0f\n\n", incumbent.utility);

  // The entrant uses NetClus: build once, query interactively.
  index::MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 5000.0;
  const index::MultiIndex index =
      index::MultiIndex::Build(*city.store, city.sites, config);
  const index::QueryEngine engine(&index, city.store.get(), &city.sites);

  util::Table table({"k", "entrant_reach", "total_reach", "query_ms"});
  for (const uint32_t k : {1u, 2u, 4u, 8u}) {
    index::QueryConfig query;
    query.k = k;
    query.tau_m = tau;
    query.existing_services = incumbent.sites;
    util::WallTimer timer;
    const index::QueryResult result = engine.Tops(psi, query);
    const double ms = timer.Millis();
    // Evaluate the entrant's true incremental reach.
    std::vector<tops::SiteId> combined = incumbent.sites;
    combined.insert(combined.end(), result.selection.sites.begin(),
                    result.selection.sites.end());
    const double total = tops::CoverageIndex::EvaluateSelection(
        *city.store, city.sites, combined, tau, psi);
    const double incumbent_only = tops::CoverageIndex::EvaluateSelection(
        *city.store, city.sites, incumbent.sites, tau, psi);
    table.Row()
        .Cell(static_cast<uint64_t>(k))
        .Cell(total - incumbent_only, 1)
        .Cell(total, 1)
        .Cell(ms, 1);
  }
  table.PrintText(std::cout);
  std::printf(
      "\nNote: entrant avoids the incumbent's catchments; reach is expected\n"
      "attention (sum of (1 - d/tau)^2 over trajectories), not a count.\n");
  return 0;
}
