// Live placement service: the serving subsystem end to end.
//
// A city operator runs a long-lived placement service: dispatchers keep
// asking "where should the next k service vans go?" while the trajectory
// corpus evolves underneath them — new trips stream in all day. This
// example boots a NetClusServer over a built engine and walks one
// simulated day:
//
//  1. morning: concurrent dispatcher queries against snapshot v1;
//  2. midday: a burst of trips through a new commercial corridor arrives
//     via the update pipeline (readers keep answering throughout);
//  3. afternoon: the same queries now reflect the shifted demand, cached
//     answers show up as hits, and the server reports its latency
//     percentiles, QPS, and cache stats.
//
// The observability layer rides along: a metrics snapshot (the serving
// and scheduler families) prints after each phase, and on exit the full
// Prometheus dump plus the Chrome trace land in NETCLUS_OBS_OUT
// (default: the current directory) as live_placement_metrics.prom and
// live_placement_trace.json — load the latter in Perfetto.
//
// Run: NETCLUS_TRACE_SAMPLE=1.0 ./build/examples/live_placement_service
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "graph/generators.h"
#include "serve/server.h"
#include "traj/trip_generator.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

// Prints the serving-level metric families (skipping histogram bucket
// noise) so each phase's snapshot stays a handful of lines.
void PrintMetricsSnapshot(const netclus::serve::NetClusServer& server,
                          const char* phase) {
  std::printf("\n-- metrics snapshot (%s) --\n", phase);
  std::istringstream in(
      server.DumpMetrics(netclus::obs::ExportFormat::kPrometheusText));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find("_bucket{") != std::string::npos) continue;
    if (line.rfind("netclus_serve_", 0) == 0 ||
        line.rfind("netclus_sched_", 0) == 0 ||
        line.rfind("netclus_query_cache_", 0) == 0 ||
        line.rfind("netclus_snapshot_", 0) == 0 ||
        line.rfind("netclus_trace_", 0) == 0) {
      std::printf("  %s\n", line.c_str());
    }
  }
}

}  // namespace

int main() {
  using namespace netclus;

  // A 30x30-block grid city; every intersection is a candidate site.
  graph::GridCityConfig city;
  city.rows = 30;
  city.cols = 30;
  city.block_m = 120.0;
  graph::RoadNetwork network = graph::GenerateGridCity(city);
  tops::SiteSet sites = tops::SiteSet::AllNodes(network);
  Engine::Options options;
  options.index.tau_min_m = 300.0;
  options.index.tau_max_m = 3000.0;
  Engine engine(std::move(network), std::move(sites), options);

  util::Rng rng(42);
  for (int i = 0; i < 1500; ++i) {
    const auto src = static_cast<graph::NodeId>(
        rng.UniformInt(engine.network().num_nodes()));
    const auto dst = static_cast<graph::NodeId>(
        rng.UniformInt(engine.network().num_nodes()));
    if (src == dst) continue;
    auto route = traj::RoutePerturbed(engine.network(), src, dst, 0.3, 100 + i);
    if (route.size() >= 2) engine.AddTrajectory(std::move(route));
  }
  engine.BuildIndex();
  std::printf("offline: %zu trajectories indexed, %zu instances\n",
              engine.store().live_count(), engine.index().num_instances());

  // Boot the serving layer: snapshot isolation + update pipeline + cache.
  auto server = engine.Serve();

  // 1. Morning: four dispatcher threads fire placement queries at once.
  Engine::QuerySpec vans;
  vans.k = 4;
  vans.tau_m = 800.0;
  std::vector<std::thread> dispatchers;
  for (int t = 0; t < 4; ++t) {
    dispatchers.emplace_back([&] {
      for (int q = 0; q < 5; ++q) (void)server->Submit(vans);
    });
  }
  for (std::thread& t : dispatchers) t.join();
  const serve::ServeResult morning = server->Submit(vans);
  std::printf("\nmorning (snapshot v%llu): top-%u sites:",
              static_cast<unsigned long long>(morning.snapshot_version), vans.k);
  for (tops::SiteId s : morning.result.selection.sites) std::printf(" %u", s);
  std::printf("  (utility %.0f, cache_hit=%s)\n",
              morning.result.selection.utility,
              morning.cache_hit ? "yes" : "no");
  PrintMetricsSnapshot(*server, "morning");

  // 2. Midday: a burst of trips along one corridor streams in. Mutations
  // are asynchronous; Flush() barriers on the publish.
  const graph::NodeId corridor_start = 15 * 30 + 3;  // row 15, westside
  for (int i = 0; i < 120; ++i) {
    std::vector<graph::NodeId> trip;
    for (graph::NodeId n = corridor_start; n < corridor_start + 20; ++n) {
      trip.push_back(n);
    }
    server->MutateAddTrajectory(std::move(trip));
  }
  server->Flush();
  std::printf("\nmidday: 120 corridor trips absorbed; snapshot now v%llu "
              "(readers never blocked)\n",
              static_cast<unsigned long long>(server->snapshot()->version()));

  // 3. Afternoon: the same question, answered on the new snapshot.
  const serve::ServeResult afternoon = server->Submit(vans);
  std::printf("afternoon (snapshot v%llu): top-%u sites:",
              static_cast<unsigned long long>(afternoon.snapshot_version),
              vans.k);
  for (tops::SiteId s : afternoon.result.selection.sites) std::printf(" %u", s);
  std::printf("  (utility %.0f)\n", afternoon.result.selection.utility);
  std::printf("the corridor pulled utility from %.0f to %.0f\n",
              morning.result.selection.utility,
              afternoon.result.selection.utility);

  // Serving stats, then a graceful drain.
  const serve::ServerStats stats = server->stats();
  std::printf("\nserver stats: %llu queries (%.0f qps), "
              "p50 %.2f ms / p95 %.2f ms / p99 %.2f ms\n",
              static_cast<unsigned long long>(stats.queries_served), stats.qps,
              stats.latency_p50_ms, stats.latency_p95_ms, stats.latency_p99_ms);
  std::printf("cache: %llu hits / %llu misses / %llu evictions; "
              "pipeline: %llu ops in %llu batches\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.updates.ops_applied),
              static_cast<unsigned long long>(stats.updates.batches_published));
  PrintMetricsSnapshot(*server, "afternoon");

  // Exit artifacts: the full Prometheus dump and the Chrome trace.
  const std::string out_dir = util::GetEnvString("NETCLUS_OBS_OUT", ".");
  const std::string metrics_path = out_dir + "/live_placement_metrics.prom";
  const std::string trace_path = out_dir + "/live_placement_trace.json";
  {
    std::ofstream metrics(metrics_path);
    metrics << server->DumpMetrics();
    std::ofstream trace(trace_path);
    trace << server->DumpTraces();
  }
  std::printf("\nwrote %s and %s (load the trace in Perfetto)\n",
              metrics_path.c_str(), trace_path.c_str());

  server->Shutdown();
  std::printf("drained and shut down.\n");
  return 0;
}
