// Fuel-station placement under a land-acquisition budget (TOPS-COST).
//
// The scenario from the paper's introduction: a fuel retailer enters a
// polycentric city ("Bangalore" topology). Land prices vary by location —
// sites near district centers are expensive. The planner has a fixed
// budget B and wants to intercept as many commuter trajectories as
// possible (binary ψ: a driver refuels if a station is within τ of their
// route).
//
// Demonstrates: dataset catalog, cost-constrained NetClus queries (Sec.
// 7.1), budget sweeps, and the s_max guard.
//
// Run: ./build/examples/fuel_station_placement
#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/datasets.h"
#include "netclus/multi_index.h"
#include "netclus/query.h"
#include "tops/variants.h"
#include "util/table.h"

int main() {
  using namespace netclus;

  data::Dataset city = data::MakeBangalore(0.35);
  std::printf("Bangalore-style city: %zu intersections, %zu trajectories\n",
              city.num_nodes(), city.num_trajectories());

  // Land price: expensive near the city's geometric center, with noise.
  const geo::Point center = city.network->Bounds().Center();
  const double span = std::max(city.network->Bounds().Width(),
                               city.network->Bounds().Height());
  util::Rng rng(99);
  std::vector<double> land_price(city.sites.size());
  for (tops::SiteId s = 0; s < city.sites.size(); ++s) {
    const geo::Point& p = city.network->position(city.sites.node(s));
    const double centrality = 1.0 - geo::Distance(p, center) / span;  // 0..1
    land_price[s] = std::max(0.1, 0.4 + 2.0 * centrality + rng.Normal(0.0, 0.25));
  }

  // Offline: build the index once.
  index::MultiIndexConfig config;
  config.gamma = 0.75;
  config.tau_min_m = 400.0;
  config.tau_max_m = 6000.0;
  const index::MultiIndex index =
      index::MultiIndex::Build(*city.store, city.sites, config);
  std::printf("index: %zu instances, %s\n\n", index.num_instances(),
              util::HumanBytes(index.MemoryBytes()).c_str());

  // Online: sweep the budget and watch coverage grow.
  const index::QueryEngine engine(&index, city.store.get(), &city.sites);
  const tops::PreferenceFunction psi = tops::PreferenceFunction::Binary();
  util::Table table({"budget", "stations", "spent", "covered", "covered_%"});
  for (const double budget : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    index::QueryConfig query;
    query.tau_m = 1000.0;
    const index::QueryResult result =
        engine.TopsCost(psi, query, land_price, budget);
    const double covered = tops::CoverageIndex::EvaluateSelection(
        *city.store, city.sites, result.selection.sites, query.tau_m, psi);
    double spent = 0.0;
    for (tops::SiteId s : result.selection.sites) spent += land_price[s];
    table.Row()
        .Cell(budget, 1)
        .Cell(static_cast<uint64_t>(result.selection.sites.size()))
        .Cell(spent, 2)
        .Cell(covered, 0)
        .Cell(100.0 * covered / city.num_trajectories(), 1);
  }
  table.PrintText(std::cout);
  return 0;
}
